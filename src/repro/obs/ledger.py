"""The run ledger: a flight recorder for engine batches.

Every :meth:`~repro.engine.pool.ParallelEngine.run_sim_jobs` batch with
a cache directory appends one JSONL file under
``.repro-cache/ledger/<run_id>.jsonl``:

* one ``batch`` header — run id, wall-clock start, batch size, worker
  count, engine configuration;
* one ``job`` record per outcome, in submission order — benchmark,
  technique, ``spec_hash``, seed, scale, terminal status, attempts
  consumed, executing worker, cache disposition, cycles/instructions
  and wall seconds (failures carry the error's last line);
* one ``end`` footer — finish time, per-status counts, and anything
  the caller parked in :attr:`~repro.engine.pool.ParallelEngine
  .ledger_meta` (e.g. the ``--profile`` report path).

The ledger is *authoritative but passive*: records are derived from the
same :class:`~repro.engine.jobs.JobOutcome` list the engine returns
(not from the telemetry stream), so ledger and ``map_outcomes`` results
match by construction, and a batch killed mid-run still leaves every
settled job on disk — each line is written and flushed as it happens.
Manifests link back via their ``run_id`` field.

``repro runs list`` / ``repro runs show <run>`` read these files back;
:func:`load_run` accepts any unambiguous run-id prefix.
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path
from typing import Dict, List, Optional, Union

#: Ledger subdirectory name under the engine's cache directory.
LEDGER_DIRNAME = "ledger"


def ledger_dir_for(cache_dir: Union[str, Path]) -> Path:
    """Where an engine rooted at ``cache_dir`` keeps its ledgers."""
    return Path(cache_dir) / LEDGER_DIRNAME


def new_run_id(now: Optional[float] = None) -> str:
    """A sortable, collision-safe run id: UTC stamp + random suffix."""
    stamp = time.strftime("%Y%m%dT%H%M%S",
                          time.gmtime(time.time() if now is None
                                      else now))
    return f"{stamp}-{os.urandom(3).hex()}"


class LedgerWriter:
    """Appends one batch's records to its ledger file as they happen.

    Open it with the batch header fields, call :meth:`job` per settled
    outcome, :meth:`close` with any footer metadata.  Every record is
    flushed on write so a killed process loses at most the in-flight
    line; :meth:`close` is idempotent and crash-tolerant (the reader
    treats a missing ``end`` record as "batch did not finish").
    """

    def __init__(self, directory: Union[str, Path], run_id: str,
                 **header: object) -> None:
        self.run_id = run_id
        self.path = Path(directory) / f"{run_id}.jsonl"
        self.path.parent.mkdir(parents=True, exist_ok=True)
        self._handle = self.path.open("w", encoding="utf-8")
        self._counts: Dict[str, int] = {}
        self._write({"record": "batch", "run_id": run_id,
                     "created_at": time.time(), **header})

    def _write(self, record: Dict[str, object]) -> None:
        self._handle.write(json.dumps(record, default=str) + "\n")
        self._handle.flush()

    def job(self, **record: object) -> None:
        """Append one job record (submission order is the caller's)."""
        status = str(record.get("status", "ok"))
        self._counts[status] = self._counts.get(status, 0) + 1
        self._write({"record": "job", **record})

    def close(self, **meta: object) -> None:
        """Write the ``end`` footer and close the file (idempotent)."""
        if self._handle.closed:
            return
        self._write({"record": "end", "run_id": self.run_id,
                     "finished_at": time.time(),
                     "counts": dict(self._counts), **meta})
        self._handle.close()

    def __enter__(self) -> "LedgerWriter":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()


# ----------------------------------------------------------------------
# read side
# ----------------------------------------------------------------------

def _read_records(path: Path) -> List[Dict[str, object]]:
    records = []
    try:
        with path.open(encoding="utf-8") as handle:
            for line in handle:
                line = line.strip()
                if not line:
                    continue
                try:
                    records.append(json.loads(line))
                except ValueError:
                    continue  # torn final line from a killed process
    except OSError:
        pass
    return records


def summarize_run(records: List[Dict[str, object]]) -> Dict[str, object]:
    """One run's headline: header fields + derived job counts.

    Counts are recomputed from the ``job`` records (not trusted from
    the footer) so an unfinished ledger still summarises correctly;
    ``finished`` is False when the ``end`` record is missing.
    """
    header = next((r for r in records if r.get("record") == "batch"), {})
    footer = next((r for r in records if r.get("record") == "end"), None)
    jobs = [r for r in records if r.get("record") == "job"]
    counts: Dict[str, int] = {}
    for job in jobs:
        status = str(job.get("status", "?"))
        counts[status] = counts.get(status, 0) + 1
    cache_hits = sum(1 for job in jobs if job.get("cache_hit"))
    summary = dict(header)
    summary.pop("record", None)
    summary.update(job_count=len(jobs), counts=counts,
                   cache_hits=cache_hits,
                   finished=footer is not None)
    if footer is not None:
        summary["finished_at"] = footer.get("finished_at")
        for key, value in footer.items():
            if key not in ("record", "run_id", "counts", "finished_at"):
                summary[key] = value
    return summary


def list_runs(directory: Union[str, Path],
              limit: Optional[int] = None) -> List[Dict[str, object]]:
    """Summaries of the ledgers under ``directory``, oldest first.

    Run ids sort chronologically by construction, so lexical filename
    order is time order.  ``limit`` keeps only the newest *N* runs —
    and, crucially, only *parses* that window: the file list is walked
    newest-first and reading stops once ``limit`` summaries exist, so a
    long-lived cache directory with thousands of ledgers costs N file
    reads, not a full scan of every JSONL body.
    """
    root = Path(directory)
    if not root.is_dir() or (limit is not None and limit <= 0):
        return []
    summaries: List[Dict[str, object]] = []
    for path in sorted(root.glob("*.jsonl"), reverse=True):
        records = _read_records(path)
        if not records:
            continue
        summary = summarize_run(records)
        summary.setdefault("run_id", path.stem)
        summary["path"] = str(path)
        summaries.append(summary)
        if limit is not None and len(summaries) >= limit:
            break
    summaries.reverse()
    return summaries


def load_run(directory: Union[str, Path],
             run_id: str) -> List[Dict[str, object]]:
    """All records of one run, looked up by id or unambiguous prefix.

    Raises ``FileNotFoundError`` when nothing matches and
    ``ValueError`` when a prefix matches several runs.
    """
    root = Path(directory)
    exact = root / f"{run_id}.jsonl"
    if exact.is_file():
        return _read_records(exact)
    matches = sorted(root.glob(f"{run_id}*.jsonl")) if root.is_dir() \
        else []
    if not matches:
        raise FileNotFoundError(
            f"no run matching {run_id!r} under {root}")
    if len(matches) > 1:
        names = ", ".join(p.stem for p in matches)
        raise ValueError(f"run prefix {run_id!r} is ambiguous: {names}")
    return _read_records(matches[0])


__all__ = [
    "LEDGER_DIRNAME",
    "LedgerWriter",
    "ledger_dir_for",
    "list_runs",
    "load_run",
    "new_run_id",
    "summarize_run",
]
