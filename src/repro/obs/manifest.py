"""Run provenance: what exactly ran, and how fast.

A :class:`RunManifest` pins one simulation to its exact inputs — the
benchmark, technique, seed, scale and a stable hash of every config
object — and records the wall-clock cost per phase plus the simulated
cycles/second throughput.  The memoising
:class:`~repro.harness.experiment.ExperimentRunner` writes one manifest
per *uncached* run, which gives every future performance PR a measured
baseline instead of anecdotes, and lets a regression be attributed to a
run's exact configuration.
"""

from __future__ import annotations

import hashlib
import json
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Sequence, Union


def config_hash(*objects: object) -> str:
    """Stable short hash over configuration objects.

    Uses each object's ``repr`` — the config dataclasses in this repo
    (``SMConfig``, ``GatingParams``, ``AdaptiveConfig``, ...) all have
    value-complete reprs — hashed with SHA-256 and truncated to 12 hex
    chars, enough to tell configurations apart at a glance.
    """
    digest = hashlib.sha256()
    for obj in objects:
        digest.update(repr(obj).encode("utf-8"))
        digest.update(b"\x00")
    return digest.hexdigest()[:12]


@dataclass
class RunManifest:
    """Provenance + throughput record of one simulation run."""

    benchmark: str
    technique: str
    seed: int
    scale: float
    config_hash: str
    cycles: int
    instructions: int
    #: Wall-clock seconds per phase, e.g. {"build_trace": .., "simulate": ..}.
    wall_seconds: Dict[str, float] = field(default_factory=dict)
    events_published: int = 0
    created_at: float = field(default_factory=time.time)
    #: Name of the process that executed the run ("" for legacy/in-process
    #: records; worker process names under the parallel engine).
    worker: str = ""
    #: True when the result was served from the persistent run cache.
    cache_hit: bool = False
    #: Terminal job state: "ok" | "failed" | "timed_out" | "cancelled".
    status: str = "ok"
    #: Worker traceback / reason when ``status != "ok"``.
    error: str = ""
    #: Execution attempts consumed (> 1 means the job was retried).
    attempts: int = 1
    #: Serialized :class:`~repro.core.spec.TechniqueSpec` of the run
    #: (``{}`` for legacy records) — the full declarative configuration,
    #: so a manifest alone can rebuild and re-run its technique.
    spec: Dict[str, object] = field(default_factory=dict)
    #: Id of the engine batch (run-ledger file) this run settled in;
    #: ``""`` for runs executed outside an engine batch.
    run_id: str = ""

    @property
    def total_seconds(self) -> float:
        """Summed wall-clock across the recorded phases."""
        return sum(self.wall_seconds.values())

    @property
    def cycles_per_sec(self) -> float:
        """Simulated-cycle throughput of the simulate phase."""
        simulate = self.wall_seconds.get("simulate", 0.0)
        return self.cycles / simulate if simulate > 0 else 0.0

    def to_dict(self) -> Dict[str, object]:
        """JSON-serialisable form (includes the derived throughput)."""
        return {
            "benchmark": self.benchmark,
            "technique": self.technique,
            "seed": self.seed,
            "scale": self.scale,
            "config_hash": self.config_hash,
            "cycles": self.cycles,
            "instructions": self.instructions,
            "wall_seconds": dict(self.wall_seconds),
            "total_seconds": self.total_seconds,
            "cycles_per_sec": self.cycles_per_sec,
            "events_published": self.events_published,
            "created_at": self.created_at,
            "worker": self.worker,
            "cache_hit": self.cache_hit,
            "status": self.status,
            "error": self.error,
            "attempts": self.attempts,
            "spec": dict(self.spec),
            "run_id": self.run_id,
        }

    @property
    def ok(self) -> bool:
        """True when the recorded run completed successfully."""
        return self.status == "ok"


def write_manifests(manifests: Sequence[RunManifest],
                    path: Union[str, Path]) -> None:
    """Write a manifest list as a JSON document."""
    document = {"manifests": [m.to_dict() for m in manifests]}
    Path(path).write_text(json.dumps(document, indent=2),
                          encoding="utf-8")


def load_manifests(path: Union[str, Path]) -> List[Dict[str, object]]:
    """Read back records written by :func:`write_manifests`."""
    document = json.loads(Path(path).read_text(encoding="utf-8"))
    return document["manifests"]
