"""Multi-process profile aggregation for ``--profile``.

A parallel run executes almost everything inside pool workers, so a
parent-only ``cProfile`` captures just scheduling overhead.  Under
``--profile`` the engine's workers therefore profile each job and dump
per-job ``.pstats`` files into the telemetry's ``profile_dir``
(:meth:`~repro.obs.telemetry.WorkerTelemetry.profile_job`); this module
folds those dumps and the parent's own profile into one
:class:`pstats.Stats`, written as a single binary report whose path the
run ledger records.
"""

from __future__ import annotations

import cProfile
import io
import pstats
from pathlib import Path
from typing import Optional, Tuple, Union


def aggregate_profiles(profile_dir: Optional[Union[str, Path]],
                       parent: Optional[cProfile.Profile] = None,
                       ) -> Tuple[Optional[pstats.Stats], int]:
    """Merge worker dumps (and the parent profile) into one Stats.

    Returns ``(stats, dump_count)`` — ``stats`` is None when there is
    nothing to aggregate.  Unreadable dumps (a worker killed mid-write)
    are skipped, not fatal.
    """
    stats: Optional[pstats.Stats] = None
    if parent is not None:
        stats = pstats.Stats(parent, stream=io.StringIO())
    dumps = 0
    if profile_dir is not None:
        for path in sorted(Path(profile_dir).glob("*.pstats")):
            try:
                if stats is None:
                    stats = pstats.Stats(str(path),
                                         stream=io.StringIO())
                else:
                    stats.add(str(path))
            except Exception:  # torn dump from a killed worker
                continue
            dumps += 1
    return stats, dumps


def write_profile_report(stats: pstats.Stats,
                         path: Union[str, Path]) -> Path:
    """Persist the merged profile as one binary pstats file.

    Load it back with ``python -m pstats <path>`` or
    ``pstats.Stats(str(path))``.
    """
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    stats.dump_stats(str(path))
    return path


def profile_summary(stats: pstats.Stats, top: int = 15) -> str:
    """The merged profile's top functions by cumulative time, as text."""
    stream = io.StringIO()
    stats.stream = stream
    stats.sort_stats("cumulative").print_stats(top)
    return stream.getvalue().rstrip()


__all__ = ["aggregate_profiles", "profile_summary",
           "write_profile_report"]
