"""Labelled metrics registry.

A single namespace for everything the simulator counts, in the style of
a production metrics system: **counters** (monotonic totals), **gauges**
(last-written values) and **histograms** (value -> count maps), each
addressable by name plus a set of ``key=value`` labels::

    registry = MetricsRegistry()
    registry.counter("gated_cycles", domain="SFU").inc(14)
    registry.gauge("idle_detect", unit="INT").set(7)
    registry.histogram("idle_period_length", unit="FP0").observe(3)

The legacy per-object counter dataclasses (``SMStats``, ``GatingStats``,
``IdlePeriodTracker``) stay as the hot-path storage — plain attribute
increments, no dict lookups in the cycle loop — and export into a
registry at end of run (:meth:`SMStats.export_metrics`,
:meth:`GatingStats.export_metrics`), making the registry the unified
read side: one flat dict, merged into :class:`~repro.sim.sm.SimResult`,
with stable ``name{label="value",...}`` keys.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Tuple, Union

LabelSet = Tuple[Tuple[str, str], ...]
MetricValue = Union[int, float, Dict[int, int]]


def _labelset(labels: Dict[str, object]) -> LabelSet:
    """Normalise a labels dict to a hashable, sorted tuple."""
    return tuple(sorted((k, str(v)) for k, v in labels.items()))


def metric_key(name: str, labels: LabelSet = ()) -> str:
    """Canonical flat key: ``name`` or ``name{k="v",...}``."""
    if not labels:
        return name
    inner = ",".join(f'{k}="{v}"' for k, v in labels)
    return f"{name}{{{inner}}}"


class Counter:
    """A monotonically increasing total."""

    __slots__ = ("name", "labels", "value")

    def __init__(self, name: str, labels: LabelSet) -> None:
        self.name = name
        self.labels = labels
        self.value = 0

    def inc(self, amount: int = 1) -> None:
        """Add ``amount`` (must be >= 0) to the total."""
        if amount < 0:
            raise ValueError(f"{self.key}: counters only go up")
        self.value += amount

    @property
    def key(self) -> str:
        """The counter's flat-dict key."""
        return metric_key(self.name, self.labels)


class Gauge:
    """A point-in-time value (last write wins)."""

    __slots__ = ("name", "labels", "value")

    def __init__(self, name: str, labels: LabelSet) -> None:
        self.name = name
        self.labels = labels
        self.value: float = 0.0

    def set(self, value: float) -> None:
        """Overwrite the gauge."""
        self.value = value

    @property
    def key(self) -> str:
        """The gauge's flat-dict key."""
        return metric_key(self.name, self.labels)


class Histogram:
    """An integer-valued distribution (value -> occurrence count)."""

    __slots__ = ("name", "labels", "buckets")

    def __init__(self, name: str, labels: LabelSet) -> None:
        self.name = name
        self.labels = labels
        self.buckets: Dict[int, int] = {}

    def observe(self, value: int, count: int = 1) -> None:
        """Record ``count`` occurrences of ``value``."""
        if count < 0:
            raise ValueError(f"{self.key}: negative observation count")
        self.buckets[value] = self.buckets.get(value, 0) + count

    @property
    def total(self) -> int:
        """Number of recorded observations."""
        return sum(self.buckets.values())

    @property
    def key(self) -> str:
        """The histogram's flat-dict key."""
        return metric_key(self.name, self.labels)


class MetricsRegistry:
    """All of one run's metrics, addressable by (name, labels)."""

    def __init__(self) -> None:
        self._counters: Dict[Tuple[str, LabelSet], Counter] = {}
        self._gauges: Dict[Tuple[str, LabelSet], Gauge] = {}
        self._histograms: Dict[Tuple[str, LabelSet], Histogram] = {}

    # ------------------------------------------------------------------
    # instrument accessors (get-or-create)
    # ------------------------------------------------------------------

    def counter(self, name: str, **labels: object) -> Counter:
        """The counter for (name, labels), created on first use."""
        key = (name, _labelset(labels))
        counter = self._counters.get(key)
        if counter is None:
            counter = self._counters[key] = Counter(name, key[1])
        return counter

    def gauge(self, name: str, **labels: object) -> Gauge:
        """The gauge for (name, labels), created on first use."""
        key = (name, _labelset(labels))
        gauge = self._gauges.get(key)
        if gauge is None:
            gauge = self._gauges[key] = Gauge(name, key[1])
        return gauge

    def histogram(self, name: str, **labels: object) -> Histogram:
        """The histogram for (name, labels), created on first use."""
        key = (name, _labelset(labels))
        histogram = self._histograms.get(key)
        if histogram is None:
            histogram = self._histograms[key] = Histogram(name, key[1])
        return histogram

    # ------------------------------------------------------------------
    # read side
    # ------------------------------------------------------------------

    def __iter__(self) -> Iterator[Union[Counter, Gauge, Histogram]]:
        yield from self._counters.values()
        yield from self._gauges.values()
        yield from self._histograms.values()

    def __len__(self) -> int:
        return (len(self._counters) + len(self._gauges)
                + len(self._histograms))

    def value(self, name: str, **labels: object) -> MetricValue:
        """Current value of one metric (KeyError when absent)."""
        key = (name, _labelset(labels))
        if key in self._counters:
            return self._counters[key].value
        if key in self._gauges:
            return self._gauges[key].value
        if key in self._histograms:
            return dict(self._histograms[key].buckets)
        raise KeyError(metric_key(*key))

    def total(self, name: str) -> float:
        """Sum of a counter family across all label sets."""
        return sum(c.value for (n, _), c in self._counters.items()
                   if n == name)

    def as_flat_dict(self) -> Dict[str, MetricValue]:
        """The whole registry as ``{"name{labels}": value}``.

        Histograms flatten to ``{bucket: count}`` dicts; everything is
        JSON-serialisable.  Keys are sorted for stable output.
        """
        flat: Dict[str, MetricValue] = {}
        for counter in self._counters.values():
            flat[counter.key] = counter.value
        for gauge in self._gauges.values():
            flat[gauge.key] = gauge.value
        for histogram in self._histograms.values():
            flat[histogram.key] = dict(sorted(histogram.buckets.items()))
        return dict(sorted(flat.items()))

    def counter_families(self) -> List[str]:
        """Distinct counter names present in the registry."""
        return sorted({name for name, _ in self._counters})
