"""Unified observability layer: events, metrics, exporters, provenance.

The subsystem has four pieces, all usable independently:

* :mod:`repro.obs.events` / :mod:`repro.obs.bus` — typed simulator
  events published into a zero-cost-when-disabled :class:`EventBus`;
  every SM owns one (``sm.bus``), shared with its gating domains,
  scheduler and epoch hooks.
* :mod:`repro.obs.metrics` — a labelled counters/gauges/histograms
  registry; the legacy per-object stats export into it at end of run and
  the flat dict lands on :class:`~repro.sim.sm.SimResult` as
  ``result.metrics``.
* :mod:`repro.obs.exporters` — JSONL event log and Chrome trace-event
  output (loadable in Perfetto).
* :mod:`repro.obs.manifest` — per-run provenance records (config hash,
  wall-clock per phase, cycles/sec).
"""

from repro.obs.bus import NULL_BUS, EventBus
from repro.obs.events import (
    EVENT_TYPES,
    BlackoutBlocked,
    EpochAdapt,
    Event,
    GateOff,
    GateOn,
    IssueStall,
    KernelBoundary,
    PriorityFlip,
    Wakeup,
)
from repro.obs.exporters import (
    ChromeTraceExporter,
    JsonlEventLog,
    load_jsonl_events,
    validate_chrome_trace,
)
from repro.obs.manifest import (
    RunManifest,
    config_hash,
    load_manifests,
    write_manifests,
)
from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    metric_key,
)

__all__ = [
    "EventBus", "NULL_BUS", "Event", "EVENT_TYPES",
    "GateOn", "GateOff", "Wakeup", "BlackoutBlocked",
    "PriorityFlip", "EpochAdapt", "IssueStall", "KernelBoundary",
    "MetricsRegistry", "Counter", "Gauge", "Histogram", "metric_key",
    "JsonlEventLog", "ChromeTraceExporter", "load_jsonl_events",
    "validate_chrome_trace",
    "RunManifest", "config_hash", "write_manifests", "load_manifests",
]
