"""Unified observability layer: events, metrics, exporters, provenance.

The subsystem has four pieces, all usable independently:

* :mod:`repro.obs.events` / :mod:`repro.obs.bus` — typed simulator
  events published into a zero-cost-when-disabled :class:`EventBus`;
  every SM owns one (``sm.bus``), shared with its gating domains,
  scheduler and epoch hooks.
* :mod:`repro.obs.metrics` — a labelled counters/gauges/histograms
  registry; the legacy per-object stats export into it at end of run and
  the flat dict lands on :class:`~repro.sim.sm.SimResult` as
  ``result.metrics``.
* :mod:`repro.obs.exporters` — JSONL event log and Chrome trace-event
  output (loadable in Perfetto), for both the sim stream and a whole
  parallel batch (:class:`EngineTraceExporter`, per-worker lanes).
* :mod:`repro.obs.manifest` — per-run provenance records (config hash,
  wall-clock per phase, cycles/sec).
* :mod:`repro.obs.telemetry` — the cross-process relay: engine events,
  bounded worker-side sim digests, and :class:`EngineTelemetry`, the
  parent facade the :class:`~repro.engine.pool.ParallelEngine` streams
  through.
* :mod:`repro.obs.ledger` — the per-batch run-ledger JSONL flight
  recorder behind ``repro runs list|show``.
* :mod:`repro.obs.progress` — the TTY-aware live progress renderer
  behind ``--progress``.
* :mod:`repro.obs.subscribe` — pull-style subscriptions over the push
  machinery: replayable :class:`Feed`\\ s (the service's per-job event
  streams), queue-backed bus taps, and live run-ledger following.
"""

from repro.obs.bus import NULL_BUS, EventBus
from repro.obs.events import (
    EVENT_TYPES,
    BlackoutBlocked,
    EpochAdapt,
    Event,
    GateOff,
    GateOn,
    IssueStall,
    KernelBoundary,
    PriorityFlip,
    Wakeup,
)
from repro.obs.exporters import (
    ChromeTraceExporter,
    EngineTraceExporter,
    JsonlEventLog,
    load_jsonl_events,
    validate_chrome_trace,
)
from repro.obs.ledger import (
    LedgerWriter,
    ledger_dir_for,
    list_runs,
    load_run,
    new_run_id,
    summarize_run,
)
from repro.obs.manifest import (
    RunManifest,
    config_hash,
    load_manifests,
    write_manifests,
)
from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    metric_key,
)
from repro.obs.progress import ProgressReporter
from repro.obs.subscribe import (
    FEED_CLOSED,
    EventTap,
    Feed,
    iter_ledger_records,
)
from repro.obs.telemetry import (
    ENGINE_EVENT_TYPES,
    CacheEvicted,
    CacheHit,
    CacheMiss,
    CacheSwept,
    EngineEvent,
    EngineTelemetry,
    JobFinished,
    JobQueued,
    JobRetry,
    JobStarted,
    PoolRebuilt,
    ServiceJobAccepted,
    ServiceJobStateChanged,
    TelemetrySettings,
    WorkerEventSummary,
)

__all__ = [
    "EventBus", "NULL_BUS", "Event", "EVENT_TYPES",
    "GateOn", "GateOff", "Wakeup", "BlackoutBlocked",
    "PriorityFlip", "EpochAdapt", "IssueStall", "KernelBoundary",
    "MetricsRegistry", "Counter", "Gauge", "Histogram", "metric_key",
    "JsonlEventLog", "ChromeTraceExporter", "EngineTraceExporter",
    "load_jsonl_events", "validate_chrome_trace",
    "RunManifest", "config_hash", "write_manifests", "load_manifests",
    "ENGINE_EVENT_TYPES", "EngineEvent", "EngineTelemetry",
    "TelemetrySettings", "JobQueued", "JobStarted", "JobRetry",
    "JobFinished", "PoolRebuilt", "CacheHit", "CacheMiss",
    "CacheEvicted", "CacheSwept", "WorkerEventSummary",
    "ServiceJobAccepted", "ServiceJobStateChanged",
    "LedgerWriter", "ledger_dir_for", "list_runs", "load_run",
    "new_run_id", "summarize_run",
    "ProgressReporter",
    "FEED_CLOSED", "EventTap", "Feed", "iter_ledger_records",
]
