"""Subscription primitives over the event bus and the run ledger.

The bus (:mod:`repro.obs.bus`) delivers events synchronously to
callbacks registered *before* the run; the simulation service needs the
complementary shape — consumers that arrive late, read at their own
pace, and disconnect without affecting the producer:

* :class:`Feed` — an append-only, replayable event feed.  Producers
  :meth:`~Feed.append` items and eventually :meth:`~Feed.close`;
  subscribers get the full history replayed on subscribe, then live
  items, in order.  Each :class:`~repro.service.core.JobTicket` carries
  one, which is what the HTTP ``/stream`` endpoint serves.  Dropping a
  subscriber never perturbs the feed — a client disconnecting
  mid-stream cannot cancel the job producing it.
* :class:`EventTap` — a thread-safe, queue-backed subscription over an
  :class:`~repro.obs.bus.EventBus`.  The bus calls subscribers on the
  publishing thread; the tap buffers events so another thread (an
  asyncio executor, a test) can drain them with a timeout.
* :func:`iter_ledger_records` — follow one run-ledger JSONL as it is
  written, yielding records until the ``end`` footer (or a timeout):
  the same records ``repro runs show`` prints, as a live stream.
"""

from __future__ import annotations

import json
import queue
import threading
import time
from pathlib import Path
from typing import Callable, Dict, Iterator, List, Optional, Union

from repro.obs.bus import EventBus
from repro.obs.events import Event

#: Sentinel a Feed delivers (and ``iter()`` swallows) at end-of-stream.
FEED_CLOSED = object()


class Feed:
    """Append-only event feed with replay-then-live subscriptions.

    Thread-safe: producers append from worker/executor threads while
    subscribers attach and detach from servers or tests.  Subscribing
    replays the existing history *under the feed lock*, so a subscriber
    sees every item exactly once, in append order, with no gap between
    replay and live delivery.  Subscriber callbacks must be quick and
    non-blocking (typically a queue put); a callback that raises is
    dropped rather than allowed to wedge the producer.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._items: List[object] = []
        self._subscribers: List[Callable[[object], None]] = []
        self._closed = False

    @property
    def closed(self) -> bool:
        """True once :meth:`close` has ended the stream."""
        return self._closed

    def append(self, item: object) -> None:
        """Record one item and deliver it to every live subscriber."""
        with self._lock:
            if self._closed:
                raise ValueError("append to a closed feed")
            self._items.append(item)
            subscribers = list(self._subscribers)
            for callback in subscribers:
                try:
                    callback(item)
                except Exception:
                    self._subscribers.remove(callback)

    def close(self) -> None:
        """End the stream: subscribers get the sentinel, then detach."""
        with self._lock:
            if self._closed:
                return
            self._closed = True
            subscribers, self._subscribers = self._subscribers, []
            for callback in subscribers:
                try:
                    callback(FEED_CLOSED)
                except Exception:
                    pass

    def history(self) -> List[object]:
        """A snapshot of everything appended so far."""
        with self._lock:
            return list(self._items)

    def subscribe(self, callback: Callable[[object], None],
                  replay: bool = True) -> Callable[[], None]:
        """Attach ``callback``; returns the detach function.

        With ``replay`` (default) the existing history is delivered
        first, atomically with the registration, so no item is missed
        or duplicated.  On an already-closed feed the history is
        replayed and the sentinel delivered immediately.
        """
        with self._lock:
            if replay:
                for item in self._items:
                    callback(item)
            if self._closed:
                callback(FEED_CLOSED)
                return lambda: None
            self._subscribers.append(callback)

        def unsubscribe() -> None:
            with self._lock:
                if callback in self._subscribers:
                    self._subscribers.remove(callback)

        return unsubscribe

    def iter(self, timeout: Optional[float] = None,
             replay: bool = True) -> Iterator[object]:
        """Iterate replay + live items until the feed closes.

        ``timeout`` bounds the wait for *each* item; expiry ends the
        iteration (it does not raise).  Detaches on garbage collection
        of the generator as well as on normal exhaustion.
        """
        buffer: "queue.Queue[object]" = queue.Queue()
        unsubscribe = self.subscribe(buffer.put, replay=replay)
        try:
            while True:
                try:
                    item = buffer.get(timeout=timeout)
                except queue.Empty:
                    return
                if item is FEED_CLOSED:
                    return
                yield item
        finally:
            unsubscribe()


class EventTap:
    """Queue-backed, thread-safe subscription over an :class:`EventBus`.

    The bus delivers synchronously on the publishing thread; the tap
    buffers into a queue so any other thread can drain at leisure::

        with EventTap(bus, JobFinished) as tap:
            run_batch()
            done = tap.drain()

    Detaching (``close`` / context exit) is idempotent and never
    disturbs the bus's other subscribers.
    """

    def __init__(self, bus: EventBus, *event_types: type) -> None:
        self.bus = bus
        self._queue: "queue.Queue[Event]" = queue.Queue()
        self._attached = True
        # The bus dispatches by exact event type; no types at all means
        # the subscribe-to-all list, which is what an untyped tap wants.
        bus.subscribe(self._queue.put, *event_types)

    def drain(self) -> List[Event]:
        """Every buffered event, without waiting."""
        events: List[Event] = []
        while True:
            try:
                events.append(self._queue.get_nowait())
            except queue.Empty:
                return events

    def get(self, timeout: Optional[float] = None) -> Optional[Event]:
        """The next event, or None when ``timeout`` expires."""
        try:
            return self._queue.get(timeout=timeout)
        except queue.Empty:
            return None

    def close(self) -> None:
        """Detach from the bus; idempotent, buffered events stay drainable."""
        if not self._attached:
            return
        self._attached = False
        self.bus.unsubscribe(self._queue.put)

    def __enter__(self) -> "EventTap":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()


def iter_ledger_records(path: Union[str, Path],
                        poll: float = 0.05,
                        timeout: Optional[float] = None,
                        ) -> Iterator[Dict[str, object]]:
    """Follow one run-ledger JSONL file as it is written.

    Yields each parsed record (``batch`` header, ``job`` lines, ``end``
    footer) in file order, polling for growth, and returns after the
    ``end`` record — the writer flushes per line, so a live batch
    streams record by record.  ``timeout`` bounds the total wait for
    *new* data; expiry ends the iteration quietly (an unfinished ledger
    from a killed batch then yields whatever was flushed).
    """
    path = Path(path)
    deadline = None if timeout is None else time.monotonic() + timeout
    position = 0
    while True:
        try:
            with path.open(encoding="utf-8") as handle:
                handle.seek(position)
                chunk = handle.read()
        except OSError:
            chunk = ""
        consumed = 0
        for line in chunk.splitlines(keepends=True):
            if not line.endswith("\n"):
                break  # torn tail: re-read once the writer finishes it
            consumed += len(line)
            text = line.strip()
            if not text:
                continue
            try:
                record = json.loads(text)
            except ValueError:
                continue
            yield record
            if record.get("record") == "end":
                return
        position += consumed
        if deadline is not None and time.monotonic() >= deadline:
            return
        time.sleep(poll)


__all__ = ["FEED_CLOSED", "EventTap", "Feed", "iter_ledger_records"]
