"""Event-stream exporters: JSONL log and Chrome trace-event format.

Both exporters are plain bus subscribers — attach them to an SM's bus
before the run, harvest the files afterwards::

    sm = build_sm(kernel, config)
    sm.bus.enable()
    log = JsonlEventLog("events.jsonl")
    trace = ChromeTraceExporter()
    log.attach(sm.bus)
    trace.attach(sm.bus)
    result = sm.run()
    log.close()
    trace.write("trace.json", end_cycle=result.cycles)

The Chrome trace output loads directly in ``chrome://tracing`` or
`Perfetto <https://ui.perfetto.dev>`_: one thread row per gating domain
showing its gated ("asleep") and waking spans, instant markers for
critical wakeups and blackout-denied requests, a scheduler row with
priority flips, and counter tracks for the adaptive idle-detect window.
Simulated cycles map 1:1 to trace microseconds (``ts``/``dur`` are in
µs), so span arithmetic in the UI reads in cycles.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Dict, IO, List, Optional, Union

from repro.obs.bus import EventBus
from repro.obs.events import (
    BlackoutBlocked,
    EpochAdapt,
    Event,
    GateOff,
    GateOn,
    KernelBoundary,
    PriorityFlip,
    Wakeup,
)
from repro.obs.telemetry import (
    CacheHit,
    CacheMiss,
    JobFinished,
    JobRetry,
    PoolRebuilt,
    WorkerEventSummary,
)


class JsonlEventLog:
    """Streams every event as one JSON object per line.

    Lines look like ``{"event": "GateOn", "cycle": 120, "domain":
    "INT0"}`` — grep-able, pandas-loadable, and cheap to write.
    """

    def __init__(self, path: Union[str, Path, IO[str]]) -> None:
        if hasattr(path, "write"):
            self._stream: IO[str] = path  # type: ignore[assignment]
            self._owns_stream = False
        else:
            self._stream = open(path, "w", encoding="utf-8")
            self._owns_stream = True
        self.events_written = 0
        self._bus: Optional[EventBus] = None

    def attach(self, bus: EventBus) -> "JsonlEventLog":
        """Subscribe to every event on ``bus``."""
        bus.subscribe(self._on_event)
        self._bus = bus
        return self

    def _on_event(self, event: Event) -> None:
        self._stream.write(json.dumps(event.to_record()))
        self._stream.write("\n")
        self.events_written += 1

    def close(self) -> None:
        """Detach from the bus and close an owned file."""
        if self._bus is not None:
            self._bus.unsubscribe(self._on_event)
            self._bus = None
        if self._owns_stream:
            self._stream.close()


def load_jsonl_events(path: Union[str, Path]) -> List[Dict[str, object]]:
    """Read back records written by :class:`JsonlEventLog`."""
    records = []
    with open(path, encoding="utf-8") as stream:
        for line in stream:
            line = line.strip()
            if line:
                records.append(json.loads(line))
    return records


#: Synthetic thread ids for non-domain tracks.
_SCHEDULER_TID = 1000
_SM_TID = 1001


class ChromeTraceExporter:
    """Builds a Chrome trace-event document from the gating stream.

    Gated windows become complete ("X") duration events whose ``dur``
    is the window's exact gated length — so the per-domain sum of span
    durations equals the ``gated_cycles`` metric of the same run, a
    property the observability tests pin.
    """

    def __init__(self, pid: int = 0) -> None:
        self.pid = pid
        self._events: List[dict] = []
        self._tids: Dict[str, int] = {}
        self._bus: Optional[EventBus] = None

    # ------------------------------------------------------------------

    def attach(self, bus: EventBus) -> "ChromeTraceExporter":
        """Subscribe to the gating/scheduling events on ``bus``."""
        bus.subscribe(self._on_gate_off, GateOff)
        bus.subscribe(self._on_wakeup, Wakeup)
        bus.subscribe(self._on_blocked, BlackoutBlocked)
        bus.subscribe(self._on_flip, PriorityFlip)
        bus.subscribe(self._on_epoch, EpochAdapt)
        bus.subscribe(self._on_kernel, KernelBoundary)
        self._bus = bus
        return self

    def detach(self) -> None:
        """Unsubscribe every handler."""
        if self._bus is None:
            return
        for handler in (self._on_gate_off, self._on_wakeup,
                        self._on_blocked, self._on_flip,
                        self._on_epoch, self._on_kernel):
            self._bus.unsubscribe(handler)
        self._bus = None

    def _tid(self, domain: str) -> int:
        if domain not in self._tids:
            self._tids[domain] = len(self._tids)
        return self._tids[domain]

    # ------------------------------------------------------------------
    # handlers
    # ------------------------------------------------------------------

    def _on_gate_off(self, event: GateOff) -> None:
        # The window covered [cycle - gated_cycles, cycle); GateOn fired
        # one cycle before the span began (the switch closes at end of
        # cycle), so reconstructing from GateOff keeps ts + dur exact.
        self._events.append({
            "name": "gated", "ph": "X", "pid": self.pid,
            "tid": self._tid(event.domain),
            "ts": event.cycle - event.gated_cycles,
            "dur": event.gated_cycles,
            "args": {"compensated": event.compensated,
                     "final": event.final},
        })

    def _on_wakeup(self, event: Wakeup) -> None:
        if event.delay:
            self._events.append({
                "name": "waking", "ph": "X", "pid": self.pid,
                "tid": self._tid(event.domain),
                "ts": event.cycle, "dur": event.delay, "args": {},
            })
        if event.critical:
            self._events.append({
                "name": "critical_wakeup", "ph": "i", "s": "t",
                "pid": self.pid, "tid": self._tid(event.domain),
                "ts": event.cycle, "args": {},
            })

    def _on_blocked(self, event: BlackoutBlocked) -> None:
        self._events.append({
            "name": "blackout_blocked", "ph": "i", "s": "t",
            "pid": self.pid, "tid": self._tid(event.domain),
            "ts": event.cycle, "args": {"remaining": event.remaining},
        })

    def _on_flip(self, event: PriorityFlip) -> None:
        self._events.append({
            "name": f"priority->{event.new_highest}", "ph": "i",
            "s": "t", "pid": self.pid, "tid": _SCHEDULER_TID,
            "ts": event.cycle, "args": {"reason": event.reason},
        })

    def _on_epoch(self, event: EpochAdapt) -> None:
        self._events.append({
            "name": f"idle_detect[{event.unit}]", "ph": "C",
            "pid": self.pid, "ts": event.cycle,
            "args": {"idle_detect": event.idle_detect,
                     "critical_wakeups": event.critical_wakeups},
        })

    def _on_kernel(self, event: KernelBoundary) -> None:
        self._events.append({
            "name": f"kernel:{event.kernel}", "ph": "i", "s": "p",
            "pid": self.pid, "tid": _SM_TID,
            "ts": event.cycle, "args": {"index": event.index},
        })

    # ------------------------------------------------------------------
    # output
    # ------------------------------------------------------------------

    def gated_span_totals(self) -> Dict[str, int]:
        """Per-domain sum of gated-span durations (validation hook)."""
        totals: Dict[str, int] = {}
        tid_to_domain = {tid: name for name, tid in self._tids.items()}
        for event in self._events:
            if event.get("name") == "gated":
                domain = tid_to_domain[event["tid"]]
                totals[domain] = totals.get(domain, 0) + event["dur"]
        return totals

    def to_document(self) -> dict:
        """The trace as a Chrome trace-event JSON object."""
        metadata = [
            {"name": "process_name", "ph": "M", "pid": self.pid,
             "args": {"name": "repro SM"}},
            {"name": "thread_name", "ph": "M", "pid": self.pid,
             "tid": _SCHEDULER_TID, "args": {"name": "scheduler"}},
        ]
        for domain, tid in sorted(self._tids.items(), key=lambda p: p[1]):
            metadata.append({
                "name": "thread_name", "ph": "M", "pid": self.pid,
                "tid": tid, "args": {"name": f"domain {domain}"}})
        return {
            "traceEvents": metadata + self._events,
            "displayTimeUnit": "ns",
            "otherData": {"time_unit": "simulated cycles (as us)"},
        }

    def write(self, path: Union[str, Path],
              end_cycle: Optional[int] = None) -> None:
        """Serialise the trace to ``path`` (detaches first).

        ``end_cycle``, when given, is recorded in the document metadata
        so consumers know the run length without a separate manifest.
        """
        self.detach()
        document = self.to_document()
        if end_cycle is not None:
            document["otherData"]["end_cycle"] = end_cycle
        Path(path).write_text(json.dumps(document, indent=1),
                              encoding="utf-8")


#: Synthetic thread id for the engine's own (parent-side) lane.
_ENGINE_TID = 1000


class EngineTraceExporter:
    """Renders a whole parallel batch as one Chrome trace.

    A plain subscriber for the *engine* event stream (attach it to an
    :class:`~repro.obs.telemetry.EngineTelemetry` bus): every worker
    process gets its own lane, where each
    :class:`~repro.obs.telemetry.WorkerEventSummary` becomes a complete
    ("X") span — one box per job, carrying its digested sim-event
    counts — and cache hits/misses render as instant markers.  Retries,
    pool rebuilds and non-ok terminal outcomes land in a separate
    "engine" control lane.

    Engine events are wall-clock-stamped; timestamps are normalised to
    the batch's earliest event, in microseconds (the trace-event native
    unit), so the Perfetto timeline reads as real elapsed time.

    The exporter is *crash-tolerant by construction*: a worker killed
    mid-job never ships its summary, so its partial activity simply
    renders as missing span — the document stays well-formed
    (:func:`validate_chrome_trace`) no matter where the batch died.
    """

    def __init__(self, pid: int = 0) -> None:
        self.pid = pid
        #: Raw entries carrying absolute wall-clock ``_ts`` (and
        #: ``_dur``) seconds; converted to µs offsets at export time.
        self._raw: List[dict] = []
        self._worker_tids: Dict[str, int] = {}
        self._bus: Optional[EventBus] = None

    # ------------------------------------------------------------------

    def attach(self, bus: EventBus) -> "EngineTraceExporter":
        """Subscribe to the engine events on ``bus``."""
        bus.subscribe(self._on_summary, WorkerEventSummary)
        bus.subscribe(self._on_finished, JobFinished)
        bus.subscribe(self._on_retry, JobRetry)
        bus.subscribe(self._on_rebuilt, PoolRebuilt)
        bus.subscribe(self._on_cache, CacheHit, CacheMiss)
        self._bus = bus
        return self

    def detach(self) -> None:
        """Unsubscribe every handler."""
        if self._bus is None:
            return
        for handler in (self._on_summary, self._on_finished,
                        self._on_retry, self._on_rebuilt,
                        self._on_cache):
            self._bus.unsubscribe(handler)
        self._bus = None

    def _worker_tid(self, worker: str) -> int:
        if worker not in self._worker_tids:
            self._worker_tids[worker] = len(self._worker_tids)
        return self._worker_tids[worker]

    @property
    def worker_lanes(self) -> List[str]:
        """Worker names with a lane, in first-seen order."""
        return sorted(self._worker_tids,
                      key=self._worker_tids.__getitem__)

    # ------------------------------------------------------------------
    # handlers
    # ------------------------------------------------------------------

    def _on_summary(self, event: WorkerEventSummary) -> None:
        self._raw.append({
            "name": event.label, "ph": "X", "pid": self.pid,
            "tid": self._worker_tid(event.worker),
            "_ts": event.started_at,
            "_dur": max(event.finished_at - event.started_at, 0.0),
            "args": {"cycles": event.cycles,
                     "cache_hit": event.cache_hit,
                     "sim_events": dict(event.counts)},
        })

    def _on_finished(self, event: JobFinished) -> None:
        if event.status == "ok":
            return  # the worker span already shows the success
        self._raw.append({
            "name": f"{event.status}:{event.label}", "ph": "i",
            "s": "t", "pid": self.pid, "tid": _ENGINE_TID,
            "_ts": event.ts, "args": {"attempts": event.attempts},
        })

    def _on_retry(self, event: JobRetry) -> None:
        self._raw.append({
            "name": f"retry:{event.label}", "ph": "i", "s": "t",
            "pid": self.pid, "tid": _ENGINE_TID, "_ts": event.ts,
            "args": {"attempt": event.attempt,
                     "reason": event.reason},
        })

    def _on_rebuilt(self, event: PoolRebuilt) -> None:
        self._raw.append({
            "name": "pool_rebuilt", "ph": "i", "s": "g",
            "pid": self.pid, "tid": _ENGINE_TID, "_ts": event.ts,
            "args": {"reason": event.reason},
        })

    def _on_cache(self, event: Event) -> None:
        hit = isinstance(event, CacheHit)
        self._raw.append({
            "name": "cache_hit" if hit else "cache_miss", "ph": "i",
            "s": "t", "pid": self.pid,
            "tid": self._worker_tid(event.worker),
            "_ts": event.ts,
            "args": {"group": event.group, "key": event.key,
                     **({} if hit
                        else {"corrupt": event.corrupt})},
        })

    # ------------------------------------------------------------------
    # output
    # ------------------------------------------------------------------

    def to_document(self) -> dict:
        """The batch as a Chrome trace-event JSON object.

        Timestamps are µs offsets from the batch's earliest event; X
        spans get a minimum 1 µs duration so zero-length jobs stay
        visible (and schema-valid).
        """
        t0 = min((raw["_ts"] for raw in self._raw), default=0.0)
        events: List[dict] = []
        for raw in self._raw:
            event = {k: v for k, v in raw.items()
                     if not k.startswith("_")}
            event["ts"] = int((raw["_ts"] - t0) * 1e6)
            if event["ph"] == "X":
                event["dur"] = max(int(raw["_dur"] * 1e6), 1)
            events.append(event)
        events.sort(key=lambda e: (e["ts"], e["tid"]))
        metadata = [
            {"name": "process_name", "ph": "M", "pid": self.pid,
             "args": {"name": "repro engine"}},
            {"name": "thread_name", "ph": "M", "pid": self.pid,
             "tid": _ENGINE_TID, "args": {"name": "engine"}},
        ]
        for worker, tid in sorted(self._worker_tids.items(),
                                  key=lambda p: p[1]):
            metadata.append({
                "name": "thread_name", "ph": "M", "pid": self.pid,
                "tid": tid, "args": {"name": f"worker {worker}"}})
        return {
            "traceEvents": metadata + events,
            "displayTimeUnit": "ms",
            "otherData": {"time_unit": "wall-clock microseconds",
                          "workers": self.worker_lanes},
        }

    def write(self, path: Union[str, Path]) -> None:
        """Serialise the trace to ``path`` (detaches first)."""
        self.detach()
        Path(path).write_text(json.dumps(self.to_document(), indent=1),
                              encoding="utf-8")


def validate_chrome_trace(document: dict) -> None:
    """Raise ValueError unless ``document`` is a well-formed Chrome
    trace-event JSON object (the schema the tests and tooling rely on).
    """
    if not isinstance(document, dict) or "traceEvents" not in document:
        raise ValueError("not a trace-event object: missing traceEvents")
    events = document["traceEvents"]
    if not isinstance(events, list):
        raise ValueError("traceEvents must be a list")
    for i, event in enumerate(events):
        if not isinstance(event, dict):
            raise ValueError(f"traceEvents[{i}] is not an object")
        for required in ("name", "ph", "pid"):
            if required not in event:
                raise ValueError(f"traceEvents[{i}] missing {required!r}")
        phase = event["ph"]
        if phase not in ("X", "B", "E", "i", "I", "C", "M"):
            raise ValueError(f"traceEvents[{i}]: unknown phase {phase!r}")
        if phase in ("X", "B", "E", "i", "I", "C") and "ts" not in event:
            raise ValueError(f"traceEvents[{i}] missing 'ts'")
        if phase == "X" and not isinstance(event.get("dur"), int):
            raise ValueError(f"traceEvents[{i}]: X event needs int dur")
