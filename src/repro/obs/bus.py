"""The simulator's event bus.

One :class:`EventBus` instance rides along with each
:class:`~repro.sim.sm.StreamingMultiprocessor`; the gating domains, the
scheduler and the epoch hooks all hold a reference to the *same* bus, so
enabling it (before ``run()``) turns the whole machine's event stream on
at once.

Zero cost when disabled
-----------------------

The bus is **disabled by default** and the simulator's hot paths guard
both event *construction* and *publication* behind a single attribute
read::

    if bus.enabled:
        bus.publish(GateOn(cycle, self.name))

so an uninstrumented run pays one boolean check per would-be event — no
allocation, no dispatch, no subscriber bookkeeping.  ``publish`` also
early-returns when disabled, so a stray unguarded call is still cheap.

Subscribers register per event type (or for every event) and are called
synchronously, in registration order, in simulated-cycle order — the
publish sites sit inside the cycle loop, so the stream a subscriber sees
is totally ordered by (cycle, publication sequence).

``NULL_BUS`` is a shared, permanently disabled instance used as the
default for components constructed outside an SM (e.g. a scheduler unit
test); it refuses ``enable()`` so one test cannot accidentally switch
every default-wired component in the process on.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Callable, DefaultDict, List, Type

from repro.obs.events import Event

Handler = Callable[[Event], None]


class EventBus:
    """Synchronous publish/subscribe fan-out for simulator events."""

    __slots__ = ("enabled", "events_published", "_by_type", "_all",
                 "_dispatch")

    def __init__(self, enabled: bool = False) -> None:
        #: Hot-path flag; publish sites read this before building events.
        self.enabled = enabled
        #: Total events published (monotonic; tests and exporters use it
        #: as a publication sequence number).
        self.events_published = 0
        self._by_type: DefaultDict[Type[Event], List[Handler]] = \
            defaultdict(list)
        self._all: List[Handler] = []
        #: Per-event-type flattened handler tuples (typed subscribers
        #: first, then subscribe-to-all, i.e. publication order), built
        #: lazily on first publish of each type and dropped whenever the
        #: subscription lists change.
        self._dispatch: dict = {}

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------

    def enable(self) -> None:
        """Turn the stream on (do this before the run starts)."""
        self.enabled = True

    def disable(self) -> None:
        """Turn the stream off; subscriptions are kept."""
        self.enabled = False

    # ------------------------------------------------------------------
    # subscription
    # ------------------------------------------------------------------

    def subscribe(self, handler: Handler,
                  *event_types: Type[Event]) -> Handler:
        """Register ``handler`` for ``event_types`` (or every event).

        Returns the handler so the call can be used as a decorator.
        """
        if event_types:
            for event_type in event_types:
                self._by_type[event_type].append(handler)
        else:
            self._all.append(handler)
        self._dispatch.clear()
        return handler

    def unsubscribe(self, handler: Handler) -> None:
        """Remove ``handler`` from every subscription list."""
        for handlers in self._by_type.values():
            while handler in handlers:
                handlers.remove(handler)
        while handler in self._all:
            self._all.remove(handler)
        self._dispatch.clear()

    @property
    def subscriber_count(self) -> int:
        """Number of registered (type, handler) entries."""
        return (sum(len(h) for h in self._by_type.values())
                + len(self._all))

    # ------------------------------------------------------------------
    # publication
    # ------------------------------------------------------------------

    def publish(self, event: Event) -> None:
        """Dispatch ``event`` to its type's subscribers, then to the
        subscribe-to-all handlers.  No-op while disabled."""
        if not self.enabled:
            return
        self.events_published += 1
        event_type = type(event)
        handlers = self._dispatch.get(event_type)
        if handlers is None:
            handlers = self._dispatch[event_type] = (
                tuple(self._by_type.get(event_type, ()))
                + tuple(self._all))
        for handler in handlers:
            handler(event)


class _NullBus(EventBus):
    """The shared default bus: permanently disabled."""

    __slots__ = ()

    def enable(self) -> None:
        raise RuntimeError(
            "NULL_BUS is the shared disabled default; create your own "
            "EventBus() (or pass one to build_sm) to collect events")


#: Default bus for components built outside an SM.  Never enabled.
NULL_BUS = _NullBus()
