"""Typed simulator events.

Every figure in the paper is a statistic over *events* — gating
transitions, wakeups, priority flips — so the simulator publishes them
as first-class records instead of burying them in counters.  Each event
is a tiny slotted dataclass carrying the cycle it happened at plus the
minimum payload needed to reconstruct the figure it feeds:

======================  ================================================
event                   published by / meaning
======================  ================================================
:class:`GateOn`         ``GatingDomain`` — the sleep switch closed at the
                        end of ``cycle``; leakage savings accrue from
                        ``cycle + 1``.
:class:`GateOff`        ``GatingDomain`` — the gated window ended (a
                        granted wakeup, or end-of-run finalisation);
                        carries the window length, which is what makes
                        Chrome-trace spans sum exactly to
                        ``gated_cycles``.
:class:`Wakeup`         ``GatingDomain`` — a wakeup was *granted*;
                        ``critical`` marks the Figure 6 case (granted at
                        the exact cycle a blackout expired).
:class:`BlackoutBlocked`  ``GatingDomain`` — a wakeup request was denied
                        because the domain is inside its break-even
                        blackout.
:class:`PriorityFlip`   ``GatesScheduler`` — the INT/FP type priority
                        swapped ends (section 4.1).
:class:`EpochAdapt`     ``AdaptiveIdleDetect`` — an epoch closed and the
                        idle-detect window was re-evaluated (section 5.1).
:class:`IssueStall`     ``StreamingMultiprocessor`` — an issue slot went
                        unused; ``reason`` matches the ``IssueStalls``
                        counter names.
:class:`KernelBoundary` ``StreamingMultiprocessor`` — a kernel started
                        launching warps (index 0 at run start, higher
                        indices for back-to-back multi-kernel runs).
======================  ================================================

Events deliberately carry *names* (domain / unit / kernel strings), not
object references, so exporters can serialise them without touching
simulator internals.

Events are immutable *by convention*, not enforcement: publish sites sit
in the cycle loop and a ``frozen=True`` ``__init__`` (one
``object.__setattr__`` per field) more than doubles construction cost,
which is most of the instrumented-run overhead.  Treat a published event
as read-only — the bus may hand the same instance to several handlers,
and the SM reuses one instance for identical same-cycle records.
"""

from __future__ import annotations

from dataclasses import dataclass, fields
from typing import Dict, Tuple


@dataclass(slots=True)
class Event:
    """Base class: anything that happened at a simulated cycle."""

    cycle: int

    @property
    def type_name(self) -> str:
        """Short type tag used by exporters (``"GateOn"`` etc.)."""
        return type(self).__name__

    def to_record(self) -> Dict[str, object]:
        """Flat serialisable form (JSONL exporter, tests)."""
        record: Dict[str, object] = {"event": self.type_name}
        for f in fields(self):
            record[f.name] = getattr(self, f.name)
        return record


@dataclass(slots=True)
class GateOn(Event):
    """A domain's sleep switch closed at the end of ``cycle``."""

    domain: str


@dataclass(slots=True)
class GateOff(Event):
    """A gated window ended at ``cycle`` (wakeup or end of run).

    ``gated_cycles`` is the completed window length; ``compensated`` is
    True when the window reached the break-even time, i.e. it saved net
    energy.  ``final`` marks the end-of-run book-closing variant (no
    :class:`Wakeup` follows it).
    """

    domain: str
    gated_cycles: int
    compensated: bool
    final: bool = False


@dataclass(slots=True)
class Wakeup(Event):
    """A wakeup was granted at ``cycle``; the domain is usable after
    ``delay`` more cycles.  ``critical`` is the Figure 6 event: the
    request landed on the exact cycle the blackout expired."""

    domain: str
    critical: bool
    delay: int


@dataclass(slots=True)
class BlackoutBlocked(Event):
    """A wakeup request was denied: the domain must sleep through its
    break-even time.  ``remaining`` counts the blackout cycles left."""

    domain: str
    remaining: int


@dataclass(slots=True)
class PriorityFlip(Event):
    """GATES swapped the INT/FP priority ends at ``cycle``.

    ``reason`` is one of ``"drained"`` (the highest type's active subset
    emptied), ``"blackout"`` (Coordinated Blackout extension) or
    ``"timeout"`` (the anti-starvation bound fired).
    """

    new_highest: str
    reason: str


@dataclass(slots=True)
class EpochAdapt(Event):
    """Adaptive idle-detect closed an epoch for one unit type."""

    unit: str
    epoch: int
    critical_wakeups: int
    idle_detect: int


@dataclass(slots=True)
class IssueStall(Event):
    """An issue slot went unused; ``reason`` matches ``IssueStalls``."""

    reason: str


@dataclass(slots=True)
class KernelBoundary(Event):
    """Kernel ``index`` (name ``kernel``) began launching warps."""

    kernel: str
    index: int


#: Every concrete event type, in a stable order (exporters, docs, tests).
EVENT_TYPES: Tuple[type, ...] = (
    GateOn, GateOff, Wakeup, BlackoutBlocked,
    PriorityFlip, EpochAdapt, IssueStall, KernelBoundary,
)
