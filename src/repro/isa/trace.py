"""Warp and kernel trace containers.

A :class:`WarpTrace` is the full static instruction sequence one warp will
execute; a :class:`KernelTrace` bundles the traces of every warp in a
kernel launch together with launch metadata.  Traces are immutable once
built, so a single kernel trace can be replayed under every scheduling /
power-gating technique for an apples-to-apples comparison — exactly how
the paper compares techniques on identical benchmark runs.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterator, List, Sequence

from repro.isa.instructions import Instruction
from repro.isa.optypes import OpClass


@dataclass(frozen=True)
class WarpTrace:
    """The static instruction sequence of one warp.

    Attributes:
        warp_id: Identifier unique within the kernel.
        instructions: Ordered decoded instructions this warp executes.
    """

    warp_id: int
    instructions: Sequence[Instruction]

    def __len__(self) -> int:
        return len(self.instructions)

    def __iter__(self) -> Iterator[Instruction]:
        return iter(self.instructions)

    def __getitem__(self, idx: int) -> Instruction:
        return self.instructions[idx]

    def op_class_counts(self) -> Dict[OpClass, int]:
        """Histogram of instruction types in this warp's trace."""
        counts = {cls: 0 for cls in OpClass}
        for inst in self.instructions:
            counts[inst.op_class] += 1
        return counts


@dataclass(frozen=True)
class KernelTrace:
    """A kernel launch: one trace per warp plus metadata.

    Attributes:
        name: Kernel / benchmark name (used in reports).
        warps: One :class:`WarpTrace` per warp, indexed by position.
        max_resident_warps: Hardware cap on concurrently resident warps
            per SM (48 on Fermi).  Warps beyond the cap launch as earlier
            warps retire, which is how successive thread blocks of a real
            kernel refill the SM.
    """

    name: str
    warps: Sequence[WarpTrace]
    max_resident_warps: int = 48

    def __post_init__(self) -> None:
        if not self.warps:
            raise ValueError("a kernel needs at least one warp")
        if self.max_resident_warps < 1:
            raise ValueError("max_resident_warps must be >= 1")
        ids = [w.warp_id for w in self.warps]
        if len(set(ids)) != len(ids):
            raise ValueError("warp ids must be unique within a kernel")

    @property
    def n_warps(self) -> int:
        """Total number of warps launched by the kernel."""
        return len(self.warps)

    @property
    def total_instructions(self) -> int:
        """Total dynamic instruction count across all warps."""
        return sum(len(w) for w in self.warps)

    def op_class_counts(self) -> Dict[OpClass, int]:
        """Kernel-wide histogram of instruction types."""
        counts = {cls: 0 for cls in OpClass}
        for warp in self.warps:
            for cls, n in warp.op_class_counts().items():
                counts[cls] += n
        return counts

    def op_class_mix(self) -> Dict[OpClass, float]:
        """Kernel-wide instruction-type fractions (sums to 1.0)."""
        counts = self.op_class_counts()
        total = sum(counts.values())
        if total == 0:
            return {cls: 0.0 for cls in OpClass}
        return {cls: n / total for cls, n in counts.items()}


def concatenate_kernels(name: str, kernels: List[KernelTrace]) -> KernelTrace:
    """Merge several kernel traces into one back-to-back launch.

    Warp ids are renumbered to stay unique.  Useful for modelling
    benchmarks that consist of several kernel invocations.
    """
    merged: List[WarpTrace] = []
    next_id = 0
    for kernel in kernels:
        for warp in kernel.warps:
            merged.append(WarpTrace(warp_id=next_id,
                                    instructions=warp.instructions))
            next_id += 1
    cap = max(k.max_resident_warps for k in kernels)
    return KernelTrace(name=name, warps=merged, max_resident_warps=cap)
