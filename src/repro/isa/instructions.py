"""Static instruction records.

An :class:`Instruction` is an entry in a warp's trace: everything the SM
front-end would know after decode.  Register operands are *architectural*
per-warp register indices; the scoreboard in :mod:`repro.sim.scoreboard`
tracks them at warp granularity, which matches the SIMT model where all 32
threads of a warp read/write the same architectural register.

Memory instructions carry a pre-generated line address so that trace
replay is deterministic: the synthetic trace generator decides the access
pattern once (per seed) and the cache model in :mod:`repro.sim.memory`
classifies hits and misses at run time.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Optional, Tuple

from repro.isa.optypes import OpClass


class MemorySpace(enum.IntEnum):
    """Address space of a memory operation."""

    GLOBAL = 0
    SHARED = 1


@dataclass(frozen=True)
class Instruction:
    """One decoded warp instruction.

    Attributes:
        opcode: Mnemonic, informational only (``IADD``, ``FMUL``, ``LD``...).
        op_class: The two-bit instruction type used for scheduling and
            power-gating decisions.
        dest: Destination register index, or ``None`` for stores/branches.
        srcs: Source register indices.
        latency: Execution-pipeline latency in core cycles for ALU/SFU
            work.  For loads this covers only the LDST pipeline; memory
            latency is added by the memory model.
        is_load: True for memory reads (produce a value after the memory
            round trip and keep the warp in the *pending* set meanwhile).
        is_store: True for memory writes (fire-and-forget for the warp).
        mem_space: Address space for memory operations.
        line_addr: Cache-line-granular address for memory operations.
        active_lanes: SIMT lanes enabled by the divergence mask when the
            instruction executes (1..32).  Structural timing is
            unaffected (Fermi clocks the whole warp through the unit
            regardless), but dynamic energy scales with the active-lane
            fraction, the mask-activity effect GPUWattch models.
    """

    opcode: str
    op_class: OpClass
    dest: Optional[int] = None
    srcs: Tuple[int, ...] = field(default=())
    latency: int = 4
    is_load: bool = False
    is_store: bool = False
    mem_space: MemorySpace = MemorySpace.GLOBAL
    line_addr: int = 0
    active_lanes: int = 32

    def __post_init__(self) -> None:
        if self.latency < 1:
            raise ValueError(f"latency must be >= 1, got {self.latency}")
        if not 1 <= self.active_lanes <= 32:
            raise ValueError(
                f"active_lanes must be in 1..32, got {self.active_lanes}")
        if (self.is_load or self.is_store) and self.op_class is not OpClass.LDST:
            raise ValueError("memory instructions must be OpClass.LDST")
        if self.is_load and self.dest is None:
            raise ValueError("loads must have a destination register")
        if self.is_load and self.is_store:
            raise ValueError("an instruction cannot be both load and store")

    @property
    def is_mem(self) -> bool:
        """True for any instruction that touches memory."""
        return self.is_load or self.is_store

    def registers_read(self) -> Tuple[int, ...]:
        """Registers whose values this instruction consumes."""
        return self.srcs

    def registers_written(self) -> Tuple[int, ...]:
        """Registers this instruction produces (empty for stores)."""
        return (self.dest,) if self.dest is not None else ()

    @property
    def lane_fraction(self) -> float:
        """Active-lane fraction (dynamic-energy weight of this issue)."""
        return self.active_lanes / 32.0

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        dst = f"r{self.dest}" if self.dest is not None else "-"
        srcs = ", ".join(f"r{s}" for s in self.srcs)
        return f"{self.opcode} {dst} <- [{srcs}] ({self.op_class.name})"


# Convenience constructors ---------------------------------------------------
#
# These keep trace-building code (tests, the Figure 4 walkthrough, the
# generator) terse and uniform.

def int_op(dest: int, srcs: Tuple[int, ...] = (), latency: int = 4,
           opcode: str = "IADD") -> Instruction:
    """Build an integer ALU instruction."""
    return Instruction(opcode=opcode, op_class=OpClass.INT, dest=dest,
                       srcs=srcs, latency=latency)


def fp_op(dest: int, srcs: Tuple[int, ...] = (), latency: int = 4,
          opcode: str = "FADD") -> Instruction:
    """Build a floating-point ALU instruction."""
    return Instruction(opcode=opcode, op_class=OpClass.FP, dest=dest,
                       srcs=srcs, latency=latency)


def sfu_op(dest: int, srcs: Tuple[int, ...] = (), latency: int = 16,
           opcode: str = "SIN") -> Instruction:
    """Build a special-function instruction (sin/cos/rsqrt...)."""
    return Instruction(opcode=opcode, op_class=OpClass.SFU, dest=dest,
                       srcs=srcs, latency=latency)


def load_op(dest: int, line_addr: int, srcs: Tuple[int, ...] = (),
            mem_space: MemorySpace = MemorySpace.GLOBAL,
            latency: int = 2, opcode: str = "LD") -> Instruction:
    """Build a load; ``latency`` is the LDST pipeline latency only."""
    return Instruction(opcode=opcode, op_class=OpClass.LDST, dest=dest,
                       srcs=srcs, latency=latency, is_load=True,
                       mem_space=mem_space, line_addr=line_addr)


def store_op(line_addr: int, srcs: Tuple[int, ...] = (),
             mem_space: MemorySpace = MemorySpace.GLOBAL,
             latency: int = 2, opcode: str = "ST") -> Instruction:
    """Build a store; the issuing warp does not wait for completion."""
    return Instruction(opcode=opcode, op_class=OpClass.LDST, dest=None,
                       srcs=srcs, latency=latency, is_store=True,
                       mem_space=mem_space, line_addr=line_addr)
