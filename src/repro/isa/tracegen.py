"""Seeded synthetic trace generation.

The paper runs 18 real CUDA benchmarks inside GPGPU-Sim.  Without the
binaries or the simulator we substitute *statistical* traces: each
benchmark is described by a :class:`TraceSpec` whose parameters are taken
from what the paper itself measures (instruction mix from Figure 5a,
active-warp population from Figure 5b, plus memory intensity and
dependency structure chosen to land the runtime behaviour in the same
regime).  Generation is fully deterministic for a given seed.

Three structural properties of the generated streams matter for the
reproduction:

* **Instruction mix** drives how often the two-level scheduler switches
  between unit types, and therefore the raw idle-period distribution
  (Figure 3a).
* **Dependency distance** controls how soon an instruction becomes ready
  after its producer issues, i.e. how much reordering freedom GATES has.
* **Memory behaviour** (load fraction, locality, footprint) controls how
  many warps sit in the *pending* set at a time, which sets the size of
  the active set the schedulers pick from (Figure 5b).
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass, field
from typing import Dict, List

import numpy as np

from repro.isa.divergence import DivergenceModel
from repro.isa.instructions import Instruction, MemorySpace
from repro.isa.optypes import ALL_OP_CLASSES, OpClass
from repro.isa.trace import KernelTrace, WarpTrace

#: Architectural registers available per warp.  Fermi allows up to 63
#: registers per thread; 32 is a typical compiled footprint and keeps the
#: dependency window realistic.
REGS_PER_WARP = 32

_OPCODES = {
    OpClass.INT: ("IADD", "IMUL", "ISETP", "SHL", "AND"),
    OpClass.FP: ("FADD", "FMUL", "FFMA", "FSETP"),
    OpClass.SFU: ("SIN", "COS", "RSQRT", "EX2"),
}


@dataclass(frozen=True)
class TraceSpec:
    """Statistical description of a benchmark's dynamic instruction stream.

    Attributes:
        name: Benchmark name.
        mix: Fraction of dynamic instructions per :class:`OpClass`.
            Must sum to 1 (within tolerance); fractions may be zero
            (e.g. ``lavaMD`` has no FP instructions).
        n_warps: Total warps launched (across all thread blocks).
        instructions_per_warp: Dynamic instructions per warp.
        max_resident_warps: Concurrent-warps cap per SM (48 on Fermi).
        dep_prob: Probability that each source operand of a generated
            instruction reads a *recent* destination register (creating a
            RAW dependency) rather than a long-dead or input value.
        dep_distance_mean: Mean of the geometric distribution used to pick
            how many instructions back the producer is.
        load_fraction: Fraction of LDST instructions that are loads (the
            rest are stores).
        footprint_lines: Number of distinct cache lines in the benchmark's
            working set; smaller footprints hit in L1 more often.
        locality: Probability that a memory access reuses one of the
            warp's recently touched lines instead of striding to a new
            one.  High locality => high L1 hit rate => few pending warps.
        shared_fraction: Fraction of memory accesses to shared memory
            (fixed short latency, never misses).
        branch_prob: Per-instruction probability of opening a divergent
            region (see :mod:`repro.isa.divergence`); 0 disables
            divergence and every instruction runs all 32 lanes.
        divergence_length: Mean instructions per divergent path.
        latency_by_class: Execution latency per op class.  Defaults match
            GPGPU-Sim's Fermi config quoted by the paper (4-cycle ALUs).
    """

    name: str
    mix: Dict[OpClass, float]
    n_warps: int = 48
    instructions_per_warp: int = 64
    max_resident_warps: int = 48
    dep_prob: float = 0.55
    dep_distance_mean: float = 3.0
    load_fraction: float = 0.75
    footprint_lines: int = 4096
    locality: float = 0.5
    shared_fraction: float = 0.2
    branch_prob: float = 0.0
    divergence_length: float = 6.0
    latency_by_class: Dict[OpClass, int] = field(default_factory=lambda: {
        OpClass.INT: 4,
        OpClass.FP: 4,
        OpClass.SFU: 16,
        OpClass.LDST: 2,
    })

    def __post_init__(self) -> None:
        total = sum(self.mix.get(cls, 0.0) for cls in ALL_OP_CLASSES)
        if not np.isclose(total, 1.0, atol=1e-6):
            raise ValueError(f"{self.name}: mix must sum to 1, got {total}")
        for cls in ALL_OP_CLASSES:
            frac = self.mix.get(cls, 0.0)
            if frac < 0:
                raise ValueError(f"{self.name}: negative mix for {cls.name}")
        if self.n_warps < 1 or self.instructions_per_warp < 1:
            raise ValueError(f"{self.name}: empty workload")
        if not 0.0 <= self.dep_prob <= 1.0:
            raise ValueError(f"{self.name}: dep_prob out of range")
        if not 0.0 <= self.locality <= 1.0:
            raise ValueError(f"{self.name}: locality out of range")
        if not 0.0 <= self.load_fraction <= 1.0:
            raise ValueError(f"{self.name}: load_fraction out of range")
        if not 0.0 <= self.shared_fraction <= 1.0:
            raise ValueError(f"{self.name}: shared_fraction out of range")
        if self.footprint_lines < 1:
            raise ValueError(f"{self.name}: footprint must be >= 1 line")
        if not 0.0 <= self.branch_prob <= 1.0:
            raise ValueError(f"{self.name}: branch_prob out of range")
        if self.divergence_length < 1.0:
            raise ValueError(f"{self.name}: divergence_length must be >= 1")


class TraceGenerator:
    """Deterministic generator of :class:`KernelTrace` objects.

    Two generators built with the same spec and seed produce identical
    traces; this is the property every cross-technique comparison in the
    harness relies on.
    """

    #: Recently-touched lines remembered per warp for the locality model.
    _REUSE_WINDOW = 8

    def __init__(self, spec: TraceSpec, seed: int = 0) -> None:
        self.spec = spec
        self.seed = seed

    def generate(self) -> KernelTrace:
        """Build the kernel trace for this generator's spec and seed."""
        # zlib.crc32 (not hash()) keeps the per-benchmark stream offset
        # stable across processes; Python string hashing is randomised.
        name_key = zlib.crc32(self.spec.name.encode("utf-8")) & 0xFFFF
        rng = np.random.default_rng(
            np.random.SeedSequence(entropy=self.seed,
                                   spawn_key=(name_key,)))
        # The mix distribution is constant across warps; build it once.
        probs = np.array([self.spec.mix.get(cls, 0.0)
                          for cls in ALL_OP_CLASSES], dtype=float)
        probs = probs / probs.sum()
        warps = [self._generate_warp(warp_id, rng, probs)
                 for warp_id in range(self.spec.n_warps)]
        return KernelTrace(name=self.spec.name, warps=warps,
                           max_resident_warps=self.spec.max_resident_warps)

    # ------------------------------------------------------------------
    # internals
    # ------------------------------------------------------------------

    def _generate_warp(self, warp_id: int, rng: np.random.Generator,
                       probs: np.ndarray) -> WarpTrace:
        """Generate one warp's instruction stream.

        This is the whole-suite generation hot loop, so the source/memory
        sampling is inlined with every per-instruction lookup hoisted to
        a local.  The RNG draw sequence (order, method, and arguments of
        every call) is part of the trace contract: two generators with
        the same spec and seed must keep producing byte-identical
        streams, so any edit here has to preserve it exactly.  Opcode
        selection indexes the tuple with ``integers(0, n)`` — the precise
        draw ``Generator.choice`` makes internally — instead of paying
        ``choice``'s per-call array conversion.
        """
        spec = self.spec
        # Instruction types are drawn i.i.d. from the mix; short
        # same-type runs appear naturally (as in real code) while the
        # long-run frequencies converge to Figure 5a's measured mix.
        classes = [ALL_OP_CLASSES[i]
                   for i in rng.choice(len(ALL_OP_CLASSES),
                                       size=spec.instructions_per_warp,
                                       p=probs)]
        instructions: List[Instruction] = []
        # Destination registers rotate through the register file so that
        # dependency distance maps onto distinct registers.
        recent_dests: List[int] = []
        recent_lines: List[int] = []
        # Give each warp a private slice of the footprint plus a shared
        # region, mimicking blocked data-parallel access patterns.
        footprint = spec.footprint_lines
        warp_base = (warp_id * 97) % max(1, footprint)
        # A zero branch probability never consumes randomness and always
        # yields full warps, so the divergence model can be skipped
        # entirely without perturbing the stream.
        diverges = spec.branch_prob != 0.0
        divergence = DivergenceModel(spec.branch_prob,
                                     spec.divergence_length)

        rng_random = rng.random
        rng_integers = rng.integers
        rng_geometric = rng.geometric
        div_step = divergence.step
        append = instructions.append
        dep_prob = spec.dep_prob
        # Geometric distance back into the recent-producer window.
        geo_p = 1.0 / max(1.0, spec.dep_distance_mean)
        shared_fraction = spec.shared_fraction
        locality = spec.locality
        load_fraction = spec.load_fraction
        latency_of = spec.latency_by_class
        ldst = OpClass.LDST
        ldst_latency = latency_of[ldst]
        reuse_window = self._REUSE_WINDOW
        shared_space = MemorySpace.SHARED
        global_space = MemorySpace.GLOBAL

        for position, op_class in enumerate(classes):
            lanes = div_step(rng) if diverges else 32
            dest = position % REGS_PER_WARP
            # Pick 1-2 source registers, biased toward recent producers.
            srcs: List[int] = []
            for _ in range(1 + (rng_random() < 0.6)):
                if recent_dests and rng_random() < dep_prob:
                    distance = int(rng_geometric(geo_p))
                    n_recent = len(recent_dests)
                    if distance > n_recent:
                        distance = n_recent
                    srcs.append(recent_dests[-distance])
                else:
                    srcs.append(int(rng_integers(0, REGS_PER_WARP)))
            srcs_t = tuple(srcs)
            if op_class is ldst:
                shared = rng_random() < shared_fraction
                if recent_lines and rng_random() < locality:
                    line = recent_lines[int(rng_integers(0,
                                                         len(recent_lines)))]
                else:
                    line = (warp_base
                            + int(rng_integers(0, footprint))) % footprint
                recent_lines.append(line)
                if len(recent_lines) > reuse_window:
                    recent_lines.pop(0)
                space = shared_space if shared else global_space
                if rng_random() < load_fraction:
                    inst = Instruction(opcode="LD", op_class=ldst,
                                       dest=dest, srcs=srcs_t,
                                       latency=ldst_latency,
                                       is_load=True, mem_space=space,
                                       line_addr=line, active_lanes=lanes)
                else:
                    inst = Instruction(opcode="ST", op_class=ldst,
                                       dest=None, srcs=srcs_t,
                                       latency=ldst_latency,
                                       is_store=True, mem_space=space,
                                       line_addr=line, active_lanes=lanes)
            else:
                ops = _OPCODES[op_class]
                inst = Instruction(
                    opcode=ops[int(rng_integers(0, len(ops)))],
                    op_class=op_class, dest=dest, srcs=srcs_t,
                    latency=latency_of[op_class], active_lanes=lanes)
            append(inst)
            if inst.dest is not None:
                recent_dests.append(inst.dest)
                if len(recent_dests) > REGS_PER_WARP:
                    recent_dests.pop(0)
        return WarpTrace(warp_id=warp_id, instructions=tuple(instructions))


def generate_kernel(spec: TraceSpec, seed: int = 0) -> KernelTrace:
    """Convenience wrapper: build and run a :class:`TraceGenerator`."""
    return TraceGenerator(spec, seed=seed).generate()
