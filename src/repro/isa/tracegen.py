"""Seeded synthetic trace generation.

The paper runs 18 real CUDA benchmarks inside GPGPU-Sim.  Without the
binaries or the simulator we substitute *statistical* traces: each
benchmark is described by a :class:`TraceSpec` whose parameters are taken
from what the paper itself measures (instruction mix from Figure 5a,
active-warp population from Figure 5b, plus memory intensity and
dependency structure chosen to land the runtime behaviour in the same
regime).  Generation is fully deterministic for a given seed.

Three structural properties of the generated streams matter for the
reproduction:

* **Instruction mix** drives how often the two-level scheduler switches
  between unit types, and therefore the raw idle-period distribution
  (Figure 3a).
* **Dependency distance** controls how soon an instruction becomes ready
  after its producer issues, i.e. how much reordering freedom GATES has.
* **Memory behaviour** (load fraction, locality, footprint) controls how
  many warps sit in the *pending* set at a time, which sets the size of
  the active set the schedulers pick from (Figure 5b).
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass, field
from typing import Dict, List, Sequence, Tuple

import numpy as np

from repro.isa.divergence import DivergenceModel
from repro.isa.instructions import Instruction, MemorySpace
from repro.isa.optypes import ALL_OP_CLASSES, OpClass
from repro.isa.trace import KernelTrace, WarpTrace

#: Architectural registers available per warp.  Fermi allows up to 63
#: registers per thread; 32 is a typical compiled footprint and keeps the
#: dependency window realistic.
REGS_PER_WARP = 32

_OPCODES = {
    OpClass.INT: ("IADD", "IMUL", "ISETP", "SHL", "AND"),
    OpClass.FP: ("FADD", "FMUL", "FFMA", "FSETP"),
    OpClass.SFU: ("SIN", "COS", "RSQRT", "EX2"),
}


@dataclass(frozen=True)
class TraceSpec:
    """Statistical description of a benchmark's dynamic instruction stream.

    Attributes:
        name: Benchmark name.
        mix: Fraction of dynamic instructions per :class:`OpClass`.
            Must sum to 1 (within tolerance); fractions may be zero
            (e.g. ``lavaMD`` has no FP instructions).
        n_warps: Total warps launched (across all thread blocks).
        instructions_per_warp: Dynamic instructions per warp.
        max_resident_warps: Concurrent-warps cap per SM (48 on Fermi).
        dep_prob: Probability that each source operand of a generated
            instruction reads a *recent* destination register (creating a
            RAW dependency) rather than a long-dead or input value.
        dep_distance_mean: Mean of the geometric distribution used to pick
            how many instructions back the producer is.
        load_fraction: Fraction of LDST instructions that are loads (the
            rest are stores).
        footprint_lines: Number of distinct cache lines in the benchmark's
            working set; smaller footprints hit in L1 more often.
        locality: Probability that a memory access reuses one of the
            warp's recently touched lines instead of striding to a new
            one.  High locality => high L1 hit rate => few pending warps.
        shared_fraction: Fraction of memory accesses to shared memory
            (fixed short latency, never misses).
        branch_prob: Per-instruction probability of opening a divergent
            region (see :mod:`repro.isa.divergence`); 0 disables
            divergence and every instruction runs all 32 lanes.
        divergence_length: Mean instructions per divergent path.
        latency_by_class: Execution latency per op class.  Defaults match
            GPGPU-Sim's Fermi config quoted by the paper (4-cycle ALUs).
    """

    name: str
    mix: Dict[OpClass, float]
    n_warps: int = 48
    instructions_per_warp: int = 64
    max_resident_warps: int = 48
    dep_prob: float = 0.55
    dep_distance_mean: float = 3.0
    load_fraction: float = 0.75
    footprint_lines: int = 4096
    locality: float = 0.5
    shared_fraction: float = 0.2
    branch_prob: float = 0.0
    divergence_length: float = 6.0
    latency_by_class: Dict[OpClass, int] = field(default_factory=lambda: {
        OpClass.INT: 4,
        OpClass.FP: 4,
        OpClass.SFU: 16,
        OpClass.LDST: 2,
    })

    def __post_init__(self) -> None:
        total = sum(self.mix.get(cls, 0.0) for cls in ALL_OP_CLASSES)
        if not np.isclose(total, 1.0, atol=1e-6):
            raise ValueError(f"{self.name}: mix must sum to 1, got {total}")
        for cls in ALL_OP_CLASSES:
            frac = self.mix.get(cls, 0.0)
            if frac < 0:
                raise ValueError(f"{self.name}: negative mix for {cls.name}")
        if self.n_warps < 1 or self.instructions_per_warp < 1:
            raise ValueError(f"{self.name}: empty workload")
        if not 0.0 <= self.dep_prob <= 1.0:
            raise ValueError(f"{self.name}: dep_prob out of range")
        if not 0.0 <= self.locality <= 1.0:
            raise ValueError(f"{self.name}: locality out of range")
        if not 0.0 <= self.load_fraction <= 1.0:
            raise ValueError(f"{self.name}: load_fraction out of range")
        if not 0.0 <= self.shared_fraction <= 1.0:
            raise ValueError(f"{self.name}: shared_fraction out of range")
        if self.footprint_lines < 1:
            raise ValueError(f"{self.name}: footprint must be >= 1 line")
        if not 0.0 <= self.branch_prob <= 1.0:
            raise ValueError(f"{self.name}: branch_prob out of range")
        if self.divergence_length < 1.0:
            raise ValueError(f"{self.name}: divergence_length must be >= 1")


class TraceGenerator:
    """Deterministic generator of :class:`KernelTrace` objects.

    Two generators built with the same spec and seed produce identical
    traces; this is the property every cross-technique comparison in the
    harness relies on.
    """

    #: Recently-touched lines remembered per warp for the locality model.
    _REUSE_WINDOW = 8

    def __init__(self, spec: TraceSpec, seed: int = 0) -> None:
        self.spec = spec
        self.seed = seed

    def generate(self) -> KernelTrace:
        """Build the kernel trace for this generator's spec and seed."""
        # zlib.crc32 (not hash()) keeps the per-benchmark stream offset
        # stable across processes; Python string hashing is randomised.
        name_key = zlib.crc32(self.spec.name.encode("utf-8")) & 0xFFFF
        rng = np.random.default_rng(
            np.random.SeedSequence(entropy=self.seed,
                                   spawn_key=(name_key,)))
        warps = [self._generate_warp(warp_id, rng)
                 for warp_id in range(self.spec.n_warps)]
        return KernelTrace(name=self.spec.name, warps=warps,
                           max_resident_warps=self.spec.max_resident_warps)

    # ------------------------------------------------------------------
    # internals
    # ------------------------------------------------------------------

    def _generate_warp(self, warp_id: int,
                       rng: np.random.Generator) -> WarpTrace:
        spec = self.spec
        classes = self._sample_op_classes(rng)
        instructions: List[Instruction] = []
        # Destination registers rotate through the register file so that
        # dependency distance maps onto distinct registers.
        recent_dests: List[int] = []
        recent_lines: List[int] = []
        # Give each warp a private slice of the footprint plus a shared
        # region, mimicking blocked data-parallel access patterns.
        warp_base = (warp_id * 97) % max(1, spec.footprint_lines)
        divergence = DivergenceModel(spec.branch_prob,
                                     spec.divergence_length)

        for position, op_class in enumerate(classes):
            lanes = divergence.step(rng)
            dest = position % REGS_PER_WARP
            srcs = self._sample_sources(rng, recent_dests)
            if op_class is OpClass.LDST:
                inst = self._make_mem_instruction(
                    rng, dest, srcs, warp_base, recent_lines, lanes)
            else:
                opcode = str(rng.choice(_OPCODES[op_class]))
                inst = Instruction(
                    opcode=opcode, op_class=op_class, dest=dest, srcs=srcs,
                    latency=spec.latency_by_class[op_class],
                    active_lanes=lanes)
            instructions.append(inst)
            if inst.dest is not None:
                recent_dests.append(inst.dest)
                if len(recent_dests) > REGS_PER_WARP:
                    recent_dests.pop(0)
        return WarpTrace(warp_id=warp_id, instructions=tuple(instructions))

    def _sample_op_classes(self, rng: np.random.Generator) -> List[OpClass]:
        """Sample the warp's instruction-type sequence from the mix.

        Types are drawn i.i.d.; short same-type runs appear naturally (as
        in real code) while the long-run frequencies converge to the
        spec's mix, which is what Figure 5a characterises.
        """
        probs = np.array([self.spec.mix.get(cls, 0.0)
                          for cls in ALL_OP_CLASSES], dtype=float)
        probs = probs / probs.sum()
        draws = rng.choice(len(ALL_OP_CLASSES),
                           size=self.spec.instructions_per_warp, p=probs)
        return [ALL_OP_CLASSES[i] for i in draws]

    def _sample_sources(self, rng: np.random.Generator,
                        recent_dests: Sequence[int]) -> Tuple[int, ...]:
        """Pick 1-2 source registers, biased toward recent producers."""
        n_srcs = 1 + int(rng.random() < 0.6)
        srcs: List[int] = []
        for _ in range(n_srcs):
            if recent_dests and rng.random() < self.spec.dep_prob:
                # Geometric distance back into the recent-producer window.
                p = 1.0 / max(1.0, self.spec.dep_distance_mean)
                distance = min(int(rng.geometric(p)), len(recent_dests))
                srcs.append(recent_dests[-distance])
            else:
                srcs.append(int(rng.integers(0, REGS_PER_WARP)))
        return tuple(srcs)

    def _make_mem_instruction(self, rng: np.random.Generator, dest: int,
                              srcs: Tuple[int, ...], warp_base: int,
                              recent_lines: List[int],
                              lanes: int = 32) -> Instruction:
        spec = self.spec
        shared = rng.random() < spec.shared_fraction
        if recent_lines and rng.random() < spec.locality:
            line = recent_lines[int(rng.integers(0, len(recent_lines)))]
        else:
            line = (warp_base + int(rng.integers(0, spec.footprint_lines))) \
                % spec.footprint_lines
        recent_lines.append(line)
        if len(recent_lines) > self._REUSE_WINDOW:
            recent_lines.pop(0)
        space = MemorySpace.SHARED if shared else MemorySpace.GLOBAL
        is_load = rng.random() < spec.load_fraction
        if is_load:
            return Instruction(opcode="LD", op_class=OpClass.LDST,
                               dest=dest, srcs=srcs,
                               latency=spec.latency_by_class[OpClass.LDST],
                               is_load=True, mem_space=space,
                               line_addr=line, active_lanes=lanes)
        return Instruction(opcode="ST", op_class=OpClass.LDST,
                           dest=None, srcs=srcs,
                           latency=spec.latency_by_class[OpClass.LDST],
                           is_store=True, mem_space=space,
                           line_addr=line, active_lanes=lanes)


def generate_kernel(spec: TraceSpec, seed: int = 0) -> KernelTrace:
    """Convenience wrapper: build and run a :class:`TraceGenerator`."""
    return TraceGenerator(spec, seed=seed).generate()
