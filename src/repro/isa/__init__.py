"""Instruction-set substrate for the Warped Gates reproduction.

This package defines the trace representation consumed by the cycle-level
SM model in :mod:`repro.sim`:

* :mod:`repro.isa.optypes` -- operation classes (INT / FP / SFU / LDST) and
  the execution-unit kinds they map onto.
* :mod:`repro.isa.instructions` -- the static instruction record.
* :mod:`repro.isa.trace` -- per-warp instruction traces and kernel traces.
* :mod:`repro.isa.tracegen` -- seeded synthetic trace generation from a
  statistical workload description.

The paper drives GPGPU-Sim with real CUDA binaries; we substitute seeded
synthetic traces whose statistical properties (instruction mix, dependency
structure, memory behaviour) match what the paper reports per benchmark
(see DESIGN.md section 2).
"""

from repro.isa.optypes import OpClass, ExecUnitKind, UNIT_FOR_OP_CLASS
from repro.isa.instructions import Instruction, MemorySpace
from repro.isa.trace import WarpTrace, KernelTrace
from repro.isa.tracegen import TraceGenerator, TraceSpec

__all__ = [
    "OpClass",
    "ExecUnitKind",
    "UNIT_FOR_OP_CLASS",
    "Instruction",
    "MemorySpace",
    "WarpTrace",
    "KernelTrace",
    "TraceGenerator",
    "TraceSpec",
]
