"""Operation classes and execution-unit kinds.

The paper partitions every decoded instruction into one of four types, each
served by a dedicated execution resource inside the SM (section 2.1):

* ``INT``  -- integer pipeline of a CUDA core (SP cluster).
* ``FP``   -- floating-point pipeline of a CUDA core (SP cluster).
* ``SFU``  -- special-function unit (sin, cos, rsqrt, ...).
* ``LDST`` -- load/store unit for all memory operations.

The two-bit instruction-type field GATES adds to each active-warp entry
(section 4.1) encodes exactly this enumeration, which is why ``OpClass``
values fit in two bits.
"""

from __future__ import annotations

import enum


class OpClass(enum.IntEnum):
    """Instruction type, as encoded by the decoder's two-bit type field."""

    INT = 0
    FP = 1
    SFU = 2
    LDST = 3

    @property
    def short_name(self) -> str:
        """Lower-case mnemonic used in reports and figure labels."""
        return _SHORT_NAMES[self]


_SHORT_NAMES = {
    OpClass.INT: "int",
    OpClass.FP: "fp",
    OpClass.SFU: "sfu",
    OpClass.LDST: "ldst",
}


class ExecUnitKind(enum.IntEnum):
    """Kind of execution resource inside an SM.

    INT and FP are distinct power-gating domains even though both live in
    the same physical SP cluster: each CUDA core contains one integer and
    one floating-point pipeline and the paper gates them independently
    (section 3: "we will focus on leakage energy saving for CUDA cores,
    comprising of INT and FP units").
    """

    INT = 0
    FP = 1
    SFU = 2
    LDST = 3


#: Execution-unit kind required by each operation class.  The mapping is
#: one-to-one in this microarchitecture but is kept explicit so the model
#: could express, e.g., FP-capable SFUs without touching scheduler code.
UNIT_FOR_OP_CLASS = {
    OpClass.INT: ExecUnitKind.INT,
    OpClass.FP: ExecUnitKind.FP,
    OpClass.SFU: ExecUnitKind.SFU,
    OpClass.LDST: ExecUnitKind.LDST,
}

#: Operation classes handled by the CUDA-core (SP) clusters, i.e. the
#: targets of Blackout power gating in the paper.
CUDA_CORE_CLASSES = (OpClass.INT, OpClass.FP)

#: All operation classes, in the fixed middle-priority order the paper uses
#: between the INT/FP extremes (LDST above SFU, section 4.1).
ALL_OP_CLASSES = (OpClass.INT, OpClass.FP, OpClass.SFU, OpClass.LDST)
