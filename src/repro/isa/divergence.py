"""SIMT control-flow divergence model for trace generation.

Real GPGPU warps execute data-dependent branches: the SIMT stack serially
executes each taken path with a reduced active-lane mask and reconverges
at the immediate post-dominator.  The observable effect on the power
model is the *active-lane fraction* of each dynamic instruction — a warp
running 8 of 32 lanes burns roughly a quarter of the dynamic energy of a
full warp in the execution units (mask-gated lanes do not toggle), which
is exactly the mask-activity signal GPUWattch weighs.

:class:`DivergenceModel` is a small reconvergence-stack simulator used by
the trace generator: with probability ``branch_prob`` per instruction a
warp pushes a divergent region (the current mask splits by a random
taken fraction for a geometric number of instructions, then the
complementary path runs, then the mask pops).  Nesting is bounded by
``max_depth`` like a hardware SIMT stack.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

import numpy as np

#: SIMT width of a warp on Fermi.
WARP_LANES = 32


@dataclass
class _Region:
    """One open divergent region on the stack."""

    lanes_current: int     # active lanes on the path being executed
    lanes_other: int       # lanes parked for the complementary path
    remaining: int         # instructions left on the current path
    other_length: int      # instructions the complementary path will run


class DivergenceModel:
    """Per-warp active-lane mask sequence generator.

    Deterministic for a given RNG: the trace generator passes its seeded
    generator so masks replay identically across techniques.
    """

    def __init__(self, branch_prob: float, mean_region_length: float = 6.0,
                 max_depth: int = 4) -> None:
        if not 0.0 <= branch_prob <= 1.0:
            raise ValueError("branch_prob must be in [0, 1]")
        if mean_region_length < 1.0:
            raise ValueError("mean_region_length must be >= 1")
        if max_depth < 1:
            raise ValueError("max_depth must be >= 1")
        self.branch_prob = branch_prob
        self.mean_region_length = mean_region_length
        self.max_depth = max_depth
        self._stack: List[_Region] = []

    @property
    def depth(self) -> int:
        """Current nesting depth (diagnostics/tests)."""
        return len(self._stack)

    def current_lanes(self) -> int:
        """Active lanes for the next instruction."""
        if not self._stack:
            return WARP_LANES
        return self._stack[-1].lanes_current

    def step(self, rng: np.random.Generator) -> int:
        """Advance one instruction; returns its active-lane count.

        The returned mask applies to the instruction being generated;
        divergence state (path switches, reconvergence, new branches)
        updates afterwards, mirroring a branch taking effect on the
        instructions that follow it.
        """
        lanes = self.current_lanes()
        self._retire_one_instruction()
        # A new branch splits the mask that is live *after* any path
        # switch/reconvergence above, not the pre-step mask.
        self._maybe_branch(rng, self.current_lanes())
        return lanes

    # ------------------------------------------------------------------

    def _retire_one_instruction(self) -> None:
        if not self._stack:
            return
        region = self._stack[-1]
        region.remaining -= 1
        if region.remaining > 0:
            return
        if region.other_length > 0:
            # Switch to the complementary path: the parked lanes run,
            # the just-finished path's lanes park.
            region.lanes_current, region.lanes_other = \
                region.lanes_other, region.lanes_current
            region.remaining = region.other_length
            region.other_length = 0
        else:
            # Both paths done: reconverge (pop).
            self._stack.pop()

    def _maybe_branch(self, rng: np.random.Generator, lanes: int) -> None:
        if len(self._stack) >= self.max_depth:
            return
        if lanes < 2:
            return  # a single-lane path cannot diverge further
        if self.branch_prob == 0.0 or rng.random() >= self.branch_prob:
            return
        taken = int(rng.integers(1, lanes))  # 1 .. lanes-1
        p = 1.0 / self.mean_region_length
        first_len = int(rng.geometric(p))
        second_len = int(rng.geometric(p))
        self._stack.append(_Region(
            lanes_current=taken, lanes_other=lanes - taken,
            remaining=first_len, other_length=second_len))

    def reset(self) -> None:
        """Drop all divergence state (new warp)."""
        self._stack.clear()
