"""Kernel-trace serialisation (JSON).

A trace-driven simulator should be able to persist its traces: to share
a workload between machines, to pin an exact regression input, or to
hand-edit a kernel for a case study.  The format is a versioned JSON
document; round-tripping is exact (tested property-style), and loading
validates through the normal :class:`Instruction` constructors so a
corrupt file cannot build an unrepresentable trace.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Dict, List, Union

from repro.isa.instructions import Instruction, MemorySpace
from repro.isa.optypes import OpClass
from repro.isa.trace import KernelTrace, WarpTrace

#: Format version written into every document.
FORMAT_VERSION = 1


def instruction_to_dict(inst: Instruction) -> Dict:
    """Serialise one instruction (omits default-valued fields)."""
    record: Dict = {
        "op": inst.opcode,
        "cls": inst.op_class.name,
        "lat": inst.latency,
    }
    if inst.dest is not None:
        record["dest"] = inst.dest
    if inst.srcs:
        record["srcs"] = list(inst.srcs)
    if inst.is_load:
        record["load"] = True
    if inst.is_store:
        record["store"] = True
    if inst.is_mem:
        record["line"] = inst.line_addr
        record["space"] = inst.mem_space.name
    if inst.active_lanes != 32:
        record["lanes"] = inst.active_lanes
    return record


def instruction_from_dict(record: Dict) -> Instruction:
    """Rebuild one instruction, validating via the constructor."""
    try:
        op_class = OpClass[record["cls"]]
    except KeyError as exc:
        raise ValueError(f"unknown op class in trace file: {exc}") from None
    space = MemorySpace[record["space"]] if "space" in record \
        else MemorySpace.GLOBAL
    return Instruction(
        opcode=record["op"],
        op_class=op_class,
        dest=record.get("dest"),
        srcs=tuple(record.get("srcs", ())),
        latency=record["lat"],
        is_load=record.get("load", False),
        is_store=record.get("store", False),
        mem_space=space,
        line_addr=record.get("line", 0),
        active_lanes=record.get("lanes", 32),
    )


def kernel_to_dict(kernel: KernelTrace) -> Dict:
    """Serialise a whole kernel trace."""
    return {
        "format_version": FORMAT_VERSION,
        "name": kernel.name,
        "max_resident_warps": kernel.max_resident_warps,
        "warps": [
            {"id": warp.warp_id,
             "instructions": [instruction_to_dict(i) for i in warp]}
            for warp in kernel.warps
        ],
    }


def kernel_from_dict(document: Dict) -> KernelTrace:
    """Rebuild a kernel trace from its serialised form."""
    version = document.get("format_version")
    if version != FORMAT_VERSION:
        raise ValueError(f"unsupported trace format version {version!r} "
                         f"(this build reads {FORMAT_VERSION})")
    warps: List[WarpTrace] = []
    for entry in document["warps"]:
        instructions = tuple(instruction_from_dict(r)
                             for r in entry["instructions"])
        warps.append(WarpTrace(warp_id=entry["id"],
                               instructions=instructions))
    return KernelTrace(name=document["name"], warps=warps,
                       max_resident_warps=document["max_resident_warps"])


def save_kernel(kernel: KernelTrace, path: Union[str, Path]) -> None:
    """Write a kernel trace as JSON."""
    Path(path).write_text(json.dumps(kernel_to_dict(kernel)),
                          encoding="utf-8")


def load_kernel(path: Union[str, Path]) -> KernelTrace:
    """Read a kernel trace written by :func:`save_kernel`."""
    return kernel_from_dict(
        json.loads(Path(path).read_text(encoding="utf-8")))
