"""Warped Gates (MICRO 2013) reproduction.

A trace-driven, cycle-level GPGPU SM simulator plus the paper's three
techniques — the GATES gating-aware warp scheduler, Blackout power
gating (naive and coordinated), and Adaptive idle-detect — together
called *Warped Gates*.

Quick start::

    from repro import Technique, TechniqueConfig, run_benchmark

    base = run_benchmark("hotspot", TechniqueConfig(Technique.BASELINE))
    wg = run_benchmark("hotspot", TechniqueConfig(Technique.WARPED_GATES))
    print(base.cycles, wg.cycles)

See DESIGN.md for the system inventory and EXPERIMENTS.md for the
paper-vs-measured record of every figure.
"""

from repro.core.spec import (
    GatingPolicySpec,
    SchedulerSpec,
    TechniqueSpec,
    register_technique,
    technique_spec,
)
from repro.core.techniques import (
    PAPER_TECHNIQUES,
    Technique,
    TechniqueConfig,
    build_sm,
    run_benchmark,
)
from repro.power.params import EnergyParams, GatingParams
from repro.sim.config import MemoryConfig, SMConfig
from repro.workloads.specs import BENCHMARK_NAMES

__version__ = "1.0.0"

__all__ = [
    "PAPER_TECHNIQUES",
    "Technique",
    "TechniqueConfig",
    "GatingPolicySpec",
    "SchedulerSpec",
    "TechniqueSpec",
    "register_technique",
    "technique_spec",
    "build_sm",
    "run_benchmark",
    "EnergyParams",
    "GatingParams",
    "MemoryConfig",
    "SMConfig",
    "BENCHMARK_NAMES",
    "__version__",
]
