"""Execution-unit pipelines.

Each :class:`ExecPipeline` models one dispatch port plus the instructions
in flight behind it:

* An **SP cluster pipeline** (INT or FP) has initiation interval 1 — its
  16 double-clocked CUDA cores accept one 32-thread warp instruction per
  issue cycle — and a 4-cycle result latency (GPGPU-Sim Fermi default
  quoted in section 3.1 of the paper).
* The **SFU group** (4 units) occupies its port for 8 cycles per warp.
* The **LDST group** (16 units) occupies its port for 2 cycles per warp;
  leaving the LDST pipeline hands the access to the memory model.

A pipeline is *busy* while any instruction is in flight or its port is
held; power gating is only legal when a pipeline is completely drained,
and the SM enforces that before asking a controller to gate.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass
from typing import List, Optional, Tuple

from repro.isa.instructions import Instruction
from repro.isa.optypes import ExecUnitKind


@dataclass(frozen=True)
class Completion:
    """An instruction leaving a pipeline this cycle."""

    warp_slot: int
    inst: Instruction


class ExecPipeline:
    """One execution pipeline with a single dispatch port.

    Attributes:
        kind: Unit kind (INT / FP / SFU / LDST).
        name: Human-readable identity, e.g. ``"INT0"`` for the integer
            pipeline of SP cluster 0.
        initiation_interval: Cycles the dispatch port is held per
            instruction.
    """

    __slots__ = ("kind", "name", "initiation_interval", "_port_free_at",
                 "_in_flight", "_seq", "issued_count", "lane_work",
                 "busy_until", "_span_start", "tracker")

    def __init__(self, kind: ExecUnitKind, name: str,
                 initiation_interval: int = 1) -> None:
        if initiation_interval < 1:
            raise ValueError("initiation_interval must be >= 1")
        self.kind = kind
        self.name = name
        self.initiation_interval = initiation_interval
        self._port_free_at = 0
        # Min-heap of (finish_cycle, seq, completion) to drain in order.
        self._in_flight: List[Tuple[int, int, Completion]] = []
        self._seq = 0
        self.issued_count = 0
        #: Accumulated active-lane fractions of issued instructions; the
        #: dynamic-energy weight of this pipeline's work (a fully
        #: converged instruction contributes 1.0, an 8-lane one 0.25).
        self.lane_work = 0.0
        #: Busy watermark: after the cycle's writeback drain, the
        #: pipeline is busy at cycle ``c`` iff ``c < busy_until``.  The
        #: watermark is maintained at issue only (max of port release
        #: and every in-flight finish; instruction latencies are >= 1,
        #: so every contribution lies strictly beyond its issue cycle),
        #: which is what lets the power/stats update stop asking the
        #: completion heap every cycle.  Note the equivalence holds
        #: *post-drain*: before writeback an instruction finishing this
        #: very cycle still sits in the heap, so pre-writeback callers
        #: (the fast-forward planner) must keep using :meth:`is_busy`.
        self.busy_until = 0
        # Start cycle of the busy period currently open at the
        # watermark; [._span_start, busy_until) is the not-yet-
        # integrated busy span of the attached idle tracker.
        self._span_start = 0
        #: Span-accumulating :class:`~repro.sim.stats.IdlePeriodTracker`
        #: bound by the SM; None for standalone pipelines (unit tests).
        #: With a tracker bound, busy/idle spans are integrated lazily
        #: at issue boundaries and flushed by :meth:`finalize_tracker` —
        #: zero tracker work on cycles where nothing issues.
        self.tracker = None

    # ------------------------------------------------------------------
    # issue side
    # ------------------------------------------------------------------

    def port_available(self, cycle: int) -> bool:
        """True when the dispatch port can accept an instruction."""
        return cycle >= self._port_free_at

    def issue(self, cycle: int, warp_slot: int, inst: Instruction,
              extra_hold: int = 0) -> int:
        """Dispatch ``inst``; returns its pipeline-exit cycle.

        ``extra_hold`` lengthens the port occupancy and result latency
        by structural stalls outside the pipeline itself (register-file
        bank conflicts from the operand collector).

        Raises:
            RuntimeError: if the port is still held (caller must check
                :meth:`port_available` first — issuing into a held port
                would silently break the structural-hazard model).
        """
        if not self.port_available(cycle):
            raise RuntimeError(
                f"{self.name}: port busy until {self._port_free_at}, "
                f"issue attempted at {cycle}")
        if extra_hold < 0:
            raise ValueError("extra_hold must be >= 0")
        port_free = cycle + self.initiation_interval + extra_hold
        self._port_free_at = port_free
        finish = cycle + inst.latency + extra_hold
        until = self.busy_until
        if cycle >= until:
            # A new busy period opens here: integrate the previous busy
            # period and the idle gap before it into the tracker.
            tracker = self.tracker
            if tracker is not None:
                tracker.observe_busy_span(until - self._span_start)
                tracker.observe_idle_span(cycle - until)
            self._span_start = cycle
            until = cycle
        new_until = finish if finish >= port_free else port_free
        if new_until > until:
            until = new_until
        self.busy_until = until
        heapq.heappush(self._in_flight,
                       (finish, self._seq, Completion(warp_slot, inst)))
        self._seq += 1
        self.issued_count += 1
        self.lane_work += inst.lane_fraction
        return finish

    # ------------------------------------------------------------------
    # completion side
    # ------------------------------------------------------------------

    def drain(self, cycle: int) -> List[Completion]:
        """Pop every instruction whose exit cycle has arrived."""
        done: List[Completion] = []
        while self._in_flight and self._in_flight[0][0] <= cycle:
            done.append(heapq.heappop(self._in_flight)[2])
        return done

    # ------------------------------------------------------------------
    # occupancy
    # ------------------------------------------------------------------

    def is_busy(self, cycle: int) -> bool:
        """True while the pipeline holds work (port held or in flight).

        Exact at any point in the cycle (including before writeback has
        drained completions for ``cycle``); the cheaper
        ``cycle < busy_until`` form is equivalent only post-drain.
        """
        return bool(self._in_flight) or cycle < self._port_free_at

    def finalize_tracker(self, end_cycle: int) -> None:
        """Integrate the tail busy/idle spans into the bound tracker.

        Called once at end of run, before the tracker itself is
        finalized.  The open busy period is clamped to ``end_cycle``
        (per-cycle observation never ran past the end of the run
        either); the remainder, if any, is trailing idleness.
        """
        tracker = self.tracker
        if tracker is None:
            return
        busy_end = self.busy_until
        if busy_end > end_cycle:
            busy_end = end_cycle
        tracker.observe_busy_span(busy_end - self._span_start)
        if end_cycle > busy_end:
            tracker.observe_idle_span(end_cycle - busy_end)

    def in_flight_count(self) -> int:
        """Number of instructions currently in the pipeline."""
        return len(self._in_flight)

    def next_completion_cycle(self) -> Optional[int]:
        """Exit cycle of the oldest in-flight instruction, if any."""
        return self._in_flight[0][0] if self._in_flight else None

    def next_state_change(self, cycle: int) -> Optional[int]:
        """Next cycle at which this pipeline acts on the outside world.

        For the fast-forward planner: absent new issues, the only
        externally visible pipeline event is a completion draining
        (retire / memory hand-off / scoreboard resolution), so this is
        the oldest in-flight exit cycle.  Port releases are *not*
        events — with no ready warp there are no issue attempts, and
        the port check at a span-ending cycle derives from the stored
        ``_port_free_at`` timestamp.  Returns ``None`` when nothing is
        in flight; a return ``<= cycle`` means a drain is due now and
        the cycle must be real-stepped.
        """
        flight = self._in_flight
        return flight[0][0] if flight else None

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (f"ExecPipeline({self.name}, ii={self.initiation_interval}, "
                f"in_flight={len(self._in_flight)})")
