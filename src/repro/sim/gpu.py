"""Multi-SM GPU wrapper.

GTX480 has 15 SMs; the paper's per-unit statistics are per-SM and the
SMs run independent thread blocks.  :class:`GPU` distributes a kernel's
warps round-robin over N SMs (block-level work distribution), runs each
SM independently, and aggregates results.

The one cross-SM interaction modelled is the shared memory side: a
:class:`~repro.core.device.MemorySideConfig` inflates the effective
DRAM latency as a deterministic function of how many SMs are active,
computed *once before the fan-out* — so SMs stay mutually independent
(and picklable for the parallel engine), and a single-SM device sees
exactly the base latency (the neutrality the single-SM golden digests
rely on).  Everything else the paper measures lives inside the SM.

Building an SM per technique is the caller's job (the harness passes an
``sm_factory`` or a declarative config), so the GPU wrapper stays
technique-agnostic.  :meth:`GPU.from_preset` wires the full paper
platform (``gtx480``) from the device-preset registry.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Tuple

from repro.isa.optypes import ExecUnitKind
from repro.isa.trace import KernelTrace, WarpTrace
from repro.power.energy import DomainEnergy, EnergyBreakdown, domain_energy
from repro.power.params import (
    EnergyParams,
    FP_DYN_PER_ISSUE,
    INT_DYN_PER_ISSUE,
)
from repro.sim.sm import SimResult, StreamingMultiprocessor

SMFactory = Callable[[KernelTrace], StreamingMultiprocessor]


def split_kernel(kernel: KernelTrace, n_sms: int) -> List[KernelTrace]:
    """Distribute a kernel's warps round-robin over ``n_sms`` SMs.

    SMs with no warps are dropped (a tiny kernel may not fill the GPU).
    """
    if n_sms < 1:
        raise ValueError("n_sms must be >= 1")
    buckets: List[List[WarpTrace]] = [[] for _ in range(n_sms)]
    for i, warp in enumerate(kernel.warps):
        buckets[i % n_sms].append(warp)
    parts: List[KernelTrace] = []
    for sm_id, bucket in enumerate(buckets):
        if not bucket:
            continue
        renumbered = [WarpTrace(warp_id=j, instructions=w.instructions)
                      for j, w in enumerate(bucket)]
        parts.append(KernelTrace(
            name=f"{kernel.name}#sm{sm_id}", warps=renumbered,
            max_resident_warps=kernel.max_resident_warps))
    return parts


@dataclass
class GPUResult:
    """Aggregated multi-SM run results."""

    kernel_name: str
    technique: str
    sm_results: Tuple[SimResult, ...]

    @property
    def cycles(self) -> int:
        """Device runtime: the slowest SM bounds the kernel."""
        return max(r.cycles for r in self.sm_results)

    @property
    def total_instructions(self) -> int:
        """Warp instructions retired across every SM."""
        return sum(r.stats.instructions_retired for r in self.sm_results)

    def unit_activity(self, kind: ExecUnitKind) -> DomainEnergy:
        """Summed per-kind activity across all SMs."""
        total = DomainEnergy(0, 0, 0, 0)
        for result in self.sm_results:
            total = total + result.unit_activity(kind)
        return total

    def idle_histogram(self, kind: ExecUnitKind) -> Dict[int, int]:
        """Device-wide idle-period histogram for one unit kind."""
        merged: Dict[int, int] = {}
        for result in self.sm_results:
            for length, count in result.idle_histogram(kind).items():
                merged[length] = merged.get(length, 0) + count
        return merged

    def energy_breakdown(
            self, bet: int = 14) -> Dict[ExecUnitKind, EnergyBreakdown]:
        """Chip-level per-domain energy breakdown (Figure 1b shape).

        Sums every SM's INT/FP domain activity — leakage cycles, gated
        cycles, divergence-weighted issues, gating events — and runs
        the aggregate through the calibrated energy model, yielding
        one dynamic / static / overhead breakdown per unit kind for
        the whole chip.  ``bet`` sets the per-event gating overhead
        (break-even time, in leak-cycles; the paper's default is 14).
        """
        out: Dict[ExecUnitKind, EnergyBreakdown] = {}
        for kind, dyn in ((ExecUnitKind.INT, INT_DYN_PER_ISSUE),
                          (ExecUnitKind.FP, FP_DYN_PER_ISSUE)):
            params = EnergyParams.for_unit(dyn_per_issue=dyn, bet=bet)
            out[kind] = domain_energy(self.unit_activity(kind), params)
        return out


class GPU:
    """A device of independent SMs sharing a work distributor.

    Two construction styles:

    * ``GPU(n, sm_factory)`` — legacy closure-based wiring; runs
      serially only (closures don't pickle).
    * ``GPU(n, config=TechniqueConfig(...), sm_config=..., ...)`` —
      declarative wiring from picklable configs, which additionally
      allows ``run(kernel, engine=...)`` to fan the per-SM parts over
      a :class:`~repro.engine.pool.ParallelEngine`.
    """

    def __init__(self, n_sms: int, sm_factory: Optional[SMFactory] = None,
                 *, config=None, sm_config=None,
                 dram_latency: Optional[int] = None,
                 memory_side=None,
                 fast_forward: bool = False) -> None:
        if n_sms < 1:
            raise ValueError("n_sms must be >= 1")
        if (sm_factory is None) == (config is None):
            raise ValueError("pass exactly one of sm_factory or config")
        if memory_side is not None and config is None:
            # The contention model works by overriding the per-part
            # DRAM latency, which only the declarative path controls —
            # an opaque closure has already baked its latency in.
            raise ValueError(
                "memory_side needs config-based construction")
        self.n_sms = n_sms
        self.config = config
        self.sm_config = sm_config
        self.dram_latency = dram_latency
        self.memory_side = memory_side
        self.fast_forward = fast_forward
        self.sm_factory = sm_factory

    @classmethod
    def from_preset(cls, name: str, config, *,
                    dram_latency: Optional[int] = None,
                    fast_forward: bool = False) -> "GPU":
        """Build the full chip a named device preset describes.

        ``config`` is the technique (anything
        :func:`repro.core.spec.as_spec` resolves); the preset supplies
        SM count, per-SM structure and the shared memory side.
        Unknown preset names raise with a did-you-mean suggestion.
        """
        from repro.core.device import device_preset
        preset = device_preset(name)
        return cls(preset.n_sms, config=config, sm_config=preset.sm,
                   dram_latency=dram_latency,
                   memory_side=preset.memory_side,
                   fast_forward=fast_forward)

    def _effective_dram_latency(self, n_active: int) -> Optional[int]:
        """Per-part DRAM latency after memory-side contention.

        Resolved once per launch from the *active* SM count (parts
        after empty-bucket dropping), before any SM runs — the
        contention model must not depend on runtime traffic, or the
        parts would stop being independent.
        """
        if self.memory_side is None or n_active <= 1:
            return self.dram_latency
        base = self.dram_latency
        if base is None:
            sm_config = self.sm_config
            if sm_config is None:
                from repro.sim.config import SMConfig
                sm_config = SMConfig()
            base = sm_config.memory.dram_latency
        return self.memory_side.effective_dram_latency(base, n_active)

    def run(self, kernel: KernelTrace, engine=None) -> GPUResult:
        """Split, run and aggregate one kernel launch.

        With an ``engine`` (and config-based construction), the
        independent SM parts execute on the worker pool; results are
        aggregated in part order, identical to the serial path.
        """
        parts = split_kernel(kernel, self.n_sms)
        if self.sm_factory is not None:
            results = [self.sm_factory(part).run() for part in parts]
        else:
            dram_latency = self._effective_dram_latency(len(parts))
            if engine is not None:
                from repro.engine.jobs import SMPartJob, execute_sm_part
                from repro.sim.config import SMConfig
                jobs = [SMPartJob(part=part, config=self.config,
                                  sm_config=self.sm_config or SMConfig(),
                                  dram_latency=dram_latency,
                                  fast_forward=self.fast_forward)
                        for part in parts]
                results = engine.map(execute_sm_part, jobs)
            else:
                from repro.core.techniques import build_sm
                results = [build_sm(part, self.config,
                                    sm_config=self.sm_config,
                                    dram_latency=dram_latency,
                                    fast_forward=self.fast_forward).run()
                           for part in parts]
        technique = results[0].technique if results else "baseline"
        return GPUResult(kernel_name=kernel.name, technique=technique,
                         sm_results=tuple(results))
