"""Multi-SM GPU wrapper.

GTX480 has 15 SMs; the paper's per-unit statistics are per-SM and the
SMs run independent thread blocks.  :class:`GPU` distributes a kernel's
warps round-robin over N SMs (block-level work distribution), runs each
SM independently, and aggregates results.  There is deliberately no
shared-L2/DRAM-contention model: the paper's effects live inside the SM,
and DESIGN.md records this simplification.

Building an SM per technique is the caller's job (the harness passes an
``sm_factory``), so the GPU wrapper stays technique-agnostic.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Tuple

from repro.isa.optypes import ExecUnitKind
from repro.isa.trace import KernelTrace, WarpTrace
from repro.power.energy import DomainEnergy
from repro.sim.sm import SimResult, StreamingMultiprocessor

SMFactory = Callable[[KernelTrace], StreamingMultiprocessor]


def split_kernel(kernel: KernelTrace, n_sms: int) -> List[KernelTrace]:
    """Distribute a kernel's warps round-robin over ``n_sms`` SMs.

    SMs with no warps are dropped (a tiny kernel may not fill the GPU).
    """
    if n_sms < 1:
        raise ValueError("n_sms must be >= 1")
    buckets: List[List[WarpTrace]] = [[] for _ in range(n_sms)]
    for i, warp in enumerate(kernel.warps):
        buckets[i % n_sms].append(warp)
    parts: List[KernelTrace] = []
    for sm_id, bucket in enumerate(buckets):
        if not bucket:
            continue
        renumbered = [WarpTrace(warp_id=j, instructions=w.instructions)
                      for j, w in enumerate(bucket)]
        parts.append(KernelTrace(
            name=f"{kernel.name}#sm{sm_id}", warps=renumbered,
            max_resident_warps=kernel.max_resident_warps))
    return parts


@dataclass
class GPUResult:
    """Aggregated multi-SM run results."""

    kernel_name: str
    technique: str
    sm_results: Tuple[SimResult, ...]

    @property
    def cycles(self) -> int:
        """Device runtime: the slowest SM bounds the kernel."""
        return max(r.cycles for r in self.sm_results)

    @property
    def total_instructions(self) -> int:
        """Warp instructions retired across every SM."""
        return sum(r.stats.instructions_retired for r in self.sm_results)

    def unit_activity(self, kind: ExecUnitKind) -> DomainEnergy:
        """Summed per-kind activity across all SMs."""
        total = DomainEnergy(0, 0, 0, 0)
        for result in self.sm_results:
            total = total + result.unit_activity(kind)
        return total

    def idle_histogram(self, kind: ExecUnitKind) -> Dict[int, int]:
        """Device-wide idle-period histogram for one unit kind."""
        merged: Dict[int, int] = {}
        for result in self.sm_results:
            for length, count in result.idle_histogram(kind).items():
                merged[length] = merged.get(length, 0) + count
        return merged


class GPU:
    """A device of independent SMs sharing a work distributor.

    Two construction styles:

    * ``GPU(n, sm_factory)`` — legacy closure-based wiring; runs
      serially only (closures don't pickle).
    * ``GPU(n, config=TechniqueConfig(...), sm_config=..., ...)`` —
      declarative wiring from picklable configs, which additionally
      allows ``run(kernel, engine=...)`` to fan the per-SM parts over
      a :class:`~repro.engine.pool.ParallelEngine`.
    """

    def __init__(self, n_sms: int, sm_factory: Optional[SMFactory] = None,
                 *, config=None, sm_config=None,
                 dram_latency: Optional[int] = None,
                 fast_forward: bool = False) -> None:
        if n_sms < 1:
            raise ValueError("n_sms must be >= 1")
        if (sm_factory is None) == (config is None):
            raise ValueError("pass exactly one of sm_factory or config")
        self.n_sms = n_sms
        self.config = config
        self.sm_config = sm_config
        self.dram_latency = dram_latency
        self.fast_forward = fast_forward
        if sm_factory is not None:
            self.sm_factory = sm_factory
        else:
            from repro.core.techniques import build_sm

            def factory(part: KernelTrace) -> StreamingMultiprocessor:
                return build_sm(part, config, sm_config=sm_config,
                                dram_latency=dram_latency,
                                fast_forward=fast_forward)
            self.sm_factory = factory

    def run(self, kernel: KernelTrace, engine=None) -> GPUResult:
        """Split, run and aggregate one kernel launch.

        With an ``engine`` (and config-based construction), the
        independent SM parts execute on the worker pool; results are
        aggregated in part order, identical to the serial path.
        """
        parts = split_kernel(kernel, self.n_sms)
        if engine is not None and self.config is not None:
            from repro.engine.jobs import SMPartJob, execute_sm_part
            from repro.sim.config import SMConfig
            jobs = [SMPartJob(part=part, config=self.config,
                              sm_config=self.sm_config or SMConfig(),
                              dram_latency=self.dram_latency,
                              fast_forward=self.fast_forward)
                    for part in parts]
            results = engine.map(execute_sm_part, jobs)
        else:
            results = [self.sm_factory(part).run() for part in parts]
        technique = results[0].technique if results else "baseline"
        return GPUResult(kernel_name=kernel.name, technique=technique,
                         sm_results=tuple(results))
