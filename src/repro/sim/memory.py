"""Memory path: L1 data cache, MSHRs and a DRAM latency model.

The memory model exists to create the *pending-warp* dynamics the
two-level scheduler is built around: warps blocked on L1 misses leave the
active set for hundreds of cycles, shrinking the population the warp
schedulers (and GATES) pick from — the behaviour Figure 5b characterises.

Model summary:

* Set-associative, LRU L1 with allocate-on-read-miss; stores are
  write-through / no-allocate and never block the issuing warp.
* Misses to the same line merge into one MSHR entry; a full MSHR file
  back-pressures the LDST pipeline (the access retries next cycle).
* Latencies are additive constants per outcome: hit, shared, or miss
  (DRAM round trip, set per benchmark profile).
"""

from __future__ import annotations

import heapq
from collections import OrderedDict
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.isa.instructions import Instruction, MemorySpace
from repro.sim.config import MemoryConfig


class L1Cache:
    """Set-associative LRU cache over line-granular addresses."""

    def __init__(self, sets: int, ways: int) -> None:
        if sets < 1 or (sets & (sets - 1)):
            raise ValueError("sets must be a positive power of two")
        if ways < 1:
            raise ValueError("ways must be >= 1")
        self.sets = sets
        self.ways = ways
        # One OrderedDict per set: line -> None, MRU at the end.
        self._lines: List[OrderedDict] = [OrderedDict() for _ in range(sets)]
        #: Line evicted by the most recent allocating lookup, or None.
        #: Consumed by the lost-locality monitor (CCWS victim tags).
        self.last_evicted: Optional[int] = None

    def lookup(self, line_addr: int, allocate: bool) -> bool:
        """Probe for ``line_addr``; returns True on hit.

        On a hit the line becomes MRU.  On a miss with ``allocate`` the
        line is filled, evicting the LRU way if the set is full (the
        victim lands in :attr:`last_evicted`).
        """
        self.last_evicted = None
        index = line_addr & (self.sets - 1)
        cache_set = self._lines[index]
        if line_addr in cache_set:
            cache_set.move_to_end(line_addr)
            return True
        if allocate:
            if len(cache_set) >= self.ways:
                self.last_evicted, _ = cache_set.popitem(last=False)
            cache_set[line_addr] = None
        return False

    def contains(self, line_addr: int) -> bool:
        """Non-updating probe (tests / diagnostics)."""
        return line_addr in self._lines[line_addr & (self.sets - 1)]

    def flush(self) -> None:
        """Invalidate every line."""
        for cache_set in self._lines:
            cache_set.clear()


@dataclass(frozen=True)
class MemoryCompletion:
    """A load whose value arrives this cycle."""

    warp_slot: int
    dest_reg: int


@dataclass
class MemoryStats:
    """Counters exposed by the memory subsystem."""

    loads: int = 0
    stores: int = 0
    hits: int = 0
    misses: int = 0
    merged_misses: int = 0
    shared_accesses: int = 0
    mshr_stalls: int = 0

    @property
    def miss_rate(self) -> float:
        """Global-load miss rate (merged misses count as misses)."""
        probed = self.hits + self.misses + self.merged_misses
        if probed == 0:
            return 0.0
        return (self.misses + self.merged_misses) / probed


class MemorySubsystem:
    """L1 + MSHR + fixed-latency DRAM for one SM."""

    def __init__(self, config: MemoryConfig,
                 dram_latency: Optional[int] = None) -> None:
        self.config = config
        self.dram_latency = (dram_latency if dram_latency is not None
                             else config.dram_latency)
        self.l1 = L1Cache(config.l1_sets, config.l1_ways)
        self.stats = MemoryStats()
        #: Optional CCWS lost-locality monitor (attach_locality_monitor).
        self.locality_monitor = None
        # line -> warp slot that requested the fill (victim attribution).
        self._fill_owner: Dict[int, int] = {}
        # line -> completion cycle of the outstanding fill.
        self._outstanding: Dict[int, int] = {}
        # Min-heap of (ready_cycle, seq, completion).
        self._pending: List[Tuple[int, int, MemoryCompletion]] = []
        self._seq = 0
        #: Earliest cycle at which :meth:`tick` has any work to do —
        #: exactly ``min`` over scheduled deliveries and outstanding
        #: line fills, maintained at access/schedule time and after
        #: every working tick.  The SM's writeback stage reads this to
        #: skip the tick entirely on quiet cycles.
        self.next_event: float = float("inf")

    # ------------------------------------------------------------------
    # access side (called when an instruction exits the LDST pipeline)
    # ------------------------------------------------------------------

    def access(self, cycle: int, warp_slot: int,
               inst: Instruction) -> Optional[int]:
        """Perform ``inst``'s memory access at ``cycle``.

        Returns:
            The cycle the load value becomes readable, or ``None`` when
            the access cannot be accepted this cycle (MSHR file full) and
            must retry.  Stores always complete immediately from the
            warp's point of view.
        """
        if not inst.is_mem:
            raise ValueError(f"{inst.opcode} is not a memory instruction")

        if inst.is_store:
            self.stats.stores += 1
            if inst.mem_space is MemorySpace.GLOBAL:
                # Write-through, no-allocate: update LRU on hit only.
                self.l1.lookup(inst.line_addr, allocate=False)
            return cycle

        if inst.mem_space is MemorySpace.SHARED:
            self.stats.loads += 1
            self.stats.shared_accesses += 1
            ready = cycle + self.config.shared_latency
            self._schedule(ready, warp_slot, inst)
            return ready

        line = inst.line_addr
        if line in self._outstanding:
            # Miss to an in-flight line: merge into the existing MSHR.
            self.stats.loads += 1
            self.stats.merged_misses += 1
            ready = self._outstanding[line]
            self._schedule(ready, warp_slot, inst)
            return ready

        if self.l1.lookup(line, allocate=False):
            self.stats.loads += 1
            self.stats.hits += 1
            ready = cycle + self.config.l1_hit_latency
            self._schedule(ready, warp_slot, inst)
            return ready

        if len(self._outstanding) >= self.config.mshr_entries:
            # Rejected: the access retries next cycle and is only
            # counted once it is actually accepted.
            self.stats.mshr_stalls += 1
            return None

        self.stats.loads += 1
        self.stats.misses += 1
        if self.locality_monitor is not None:
            self.locality_monitor.record_miss(warp_slot, line)
            self._fill_owner[line] = warp_slot
        ready = cycle + self._miss_latency(line, cycle)
        self._outstanding[line] = ready
        self._schedule(ready, warp_slot, inst)
        return ready

    # ------------------------------------------------------------------
    # completion side
    # ------------------------------------------------------------------

    def tick(self, cycle: int) -> List[MemoryCompletion]:
        """Retire every request whose value arrives at ``cycle``.

        Fills the L1 for completed misses and frees their MSHR entries.
        """
        done: List[MemoryCompletion] = []
        if cycle < self.next_event:
            return done
        while self._pending and self._pending[0][0] <= cycle:
            done.append(heapq.heappop(self._pending)[2])
        finished_lines = [line for line, ready in self._outstanding.items()
                          if ready <= cycle]
        for line in finished_lines:
            del self._outstanding[line]
            self.l1.lookup(line, allocate=True)
            if self.locality_monitor is not None:
                evicted = self.l1.last_evicted
                if evicted is not None:
                    owner = self._fill_owner.pop(evicted, None)
                    if owner is not None:
                        self.locality_monitor.record_eviction(owner,
                                                              evicted)
        bound: float = float("inf")
        if self._pending:
            bound = self._pending[0][0]
        if self._outstanding:
            earliest = min(self._outstanding.values())
            if earliest < bound:
                bound = earliest
        self.next_event = bound
        return done

    def next_completion_cycle(self) -> float:
        """Earliest cycle at which :meth:`tick` has any work to do.

        Fast-forward bound: scheduled load deliveries and outstanding
        line fills are the only time-driven state here, and both carry
        explicit ready cycles — :attr:`next_event` tracks their minimum
        exactly (updated on schedule and after every working tick).
        Returns ``inf`` when the subsystem is completely quiet.
        """
        return self.next_event

    def attach_locality_monitor(self, monitor) -> None:
        """Enable CCWS lost-locality detection on this memory path."""
        self.locality_monitor = monitor

    def outstanding_misses(self) -> int:
        """Occupied MSHR entries (diagnostics/tests)."""
        return len(self._outstanding)

    def in_flight_requests(self) -> int:
        """Scheduled but not yet delivered load values."""
        return len(self._pending)

    def _miss_latency(self, line: int, cycle: int) -> int:
        """DRAM round trip with deterministic queueing jitter.

        A cheap integer hash of (line, access cycle) spreads each miss
        uniformly over ``dram_latency * [1 - jitter, 1 + jitter]``.  This
        de-synchronises warps blocked in the same miss wave — without it,
        lock-step warps return together and execution units see one long,
        trivially gateable idle window instead of the fragmented idleness
        real memory contention produces.
        """
        jitter = self.config.dram_jitter
        if jitter == 0.0:
            return self.dram_latency
        # SplitMix64-style avalanche for a uniform, reproducible draw.
        x = (line * 0x9E3779B97F4A7C15 + cycle * 0xBF58476D1CE4E5B9) \
            & 0xFFFFFFFFFFFFFFFF
        x ^= x >> 30
        x = (x * 0xBF58476D1CE4E5B9) & 0xFFFFFFFFFFFFFFFF
        x ^= x >> 27
        unit = (x & 0xFFFFFF) / float(0x1000000)  # [0, 1)
        scale = 1.0 + jitter * (2.0 * unit - 1.0)
        return max(1, round(self.dram_latency * scale))

    def _schedule(self, ready: int, warp_slot: int,
                  inst: Instruction) -> None:
        assert inst.dest is not None  # loads always have a destination
        heapq.heappush(self._pending,
                       (ready, self._seq,
                        MemoryCompletion(warp_slot, inst.dest)))
        self._seq += 1
        if ready < self.next_event:
            self.next_event = ready
