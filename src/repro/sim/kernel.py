"""Dense-regime SoA step kernel for the SM cycle loop.

:mod:`repro.sim.fastforward` wins when cycles are quiescent; the other
regime — every cycle issuing or about to — is dominated by the per-warp
Python dispatch in ``_classify``/``order``/``_issue``.  This module
executes *runs of dense cycles* against a per-slot state block instead
of re-deriving the whole classification every cycle.

Two layers share the work:

* **Window entry** — the per-slot head summaries are mirrored into a
  structure-of-arrays block (:class:`repro.sim.vectorize.
  WarpStateBlock`: head status, ready-at, mem-until, op-class index,
  age, destination register) and the whole population is classified in
  one batched numpy pass (``dense_classify``), seeding the incremental
  state below.  Rows follow the same ``(popped, scoreboard version)``
  stamp discipline as the scalar cache, so re-entering a window after
  a quiet stretch costs two list lookups per unchanged warp.
* **Per cycle** — classification is maintained *by delta*, not
  recomputed: each slot carries a category (no head / unresolved /
  memory-pending / active-not-ready / ready); aggregate counts, the
  per-class ACTV counters and sorted ready-slot lists are updated only
  when a slot's category changes.  Time-driven changes (a pending
  window expiring at ``mem_until``, a ready flip at ``ready_at``) come
  from a min-heap of per-slot transition events; state-driven changes
  come from exactly the events that can invalidate the scalar cache.
  (Per-cycle numpy reductions over <= 48 slots were measured slower
  than the Python they replace — per-call overhead dominates at this
  width — which is why the batched pass runs at window entry and the
  cycle loop is event-driven.  ``docs/performance.md`` has numbers.)

The synchronisation rules mirror the scalar cache's invalidation
conditions, which are complete by construction:

* ``scoreboard.version`` bumps only in ``record_issue`` (the issue
  walk), ``resolve_memory`` (writeback / retry drains) and ``reset``
  (slot reassignment);
* the popped-count half of the stamp changes only when an issue pops
  the buffer or a slot is (re)assigned;
* fetch appends move ``fetch_pc`` and the buffer length together, so a
  non-empty head row stays valid under fetch — only empty→non-empty
  transitions (tracked in ``_empty``) need a first classification;
* ``release_completed`` never bumps the version and is unobservable by
  design (a completed producer blocks nothing), so rows survive it;
* residency changes always replace the ``sm._resident`` list object,
  so one identity check per cycle detects them and triggers a full
  resync;
* between version bumps, recomputing a head summary at any cycle
  yields identical values (the cache's documented invariant), so the
  cached absolute thresholds driving the event heap never go stale.

Issue ordering runs natively for the built-in scheduler family via
their declared ``dense_order_mode`` (GATES' rank-bucket rotation, the
two-level last-issuer rotation, classic LRR), each transcribed from —
and kept decision-identical to — the scheduler's ``order``; every
other scheduler takes the generic path, which materialises the same
candidate list the scalar ``_classify`` builds and calls ``order``
itself.  Either way the hazard walk, bookkeeping, power update and
event publishes are faithful transcriptions of ``SM._step``'s stages:
a kernel-stepped window is bit-identical to the same cycles stepped
serially, and the golden identity harness pins that for every
technique.

When numpy is unavailable (or ``REPRO_PURE_PYTHON`` is set) the kernel
chooses, at construction, a pure-Python window-entry seeding in place
of the batched pass — decision-identical by the same argument, and the
per-cycle engine is shared, so the no-numpy install keeps the dense
speedup.  This module (and the scoreboard it leans on) is also a
target of the optional mypyc build (``pip install -e .[compiled]``).
"""

from __future__ import annotations

from bisect import bisect_left, insort
from heapq import heappop, heappush
from typing import List, Optional, Set

from repro.isa.optypes import OpClass
from repro.obs.events import IssueStall
from repro.power.gating import DomainState
from repro.sim.sched.base import IssueCandidate
from repro.sim.vectorize import OP_CLASSES, WarpStateBlock, numpy_available

_CUDA_OP_CLASSES = (OpClass.INT, OpClass.FP)

#: Per-slot categories of the incremental classification.  Ordered so
#: ``cat >= CAT_WAIT`` means "in the active set".
CAT_NONE, CAT_UNRES, CAT_PEND, CAT_WAIT, CAT_READY = range(5)


class DenseStepKernel:
    """Batched executor for windows of dense (issue-bound) cycles.

    Built lazily — by the fast-forward planner when it decides a window
    is dense, or by :meth:`StreamingMultiprocessor.run` when the run is
    forced through the kernel (``dense_kernel=True``).  One instance
    serves one SM run; :meth:`run_window` may be called any number of
    times and resynchronises its state block on entry.
    """

    def __init__(self, sm, use_numpy: Optional[bool] = None) -> None:
        self.sm = sm
        if use_numpy is None:
            use_numpy = numpy_available()
        #: Whether window entry uses the batched numpy classification
        #: (False → the decision-identical pure-Python seeding).
        self.vectorized = bool(use_numpy)
        #: Cycles executed through the kernel (diagnostics only — never
        #: part of a run's metrics, like the forwarder's skip counters).
        self.cycles = 0
        #: Windows executed (diagnostics only).
        self.windows = 0
        self.block: Optional[WarpStateBlock] = (
            WarpStateBlock(len(sm.warps)) if self.vectorized else None)
        n_slots = len(sm.warps)
        #: Resident slots whose I-buffer is empty with trace left to
        #: fetch: the only slots a fetch tick can flip NO_HEAD → KNOWN.
        self._empty: Set[int] = set()
        #: Slots whose scoreboard resolved a load this writeback (their
        #: classification is stale until refreshed).
        self._dirty: Set[int] = set()
        self._threshold = sm.config.memory.pending_threshold
        # --- incremental classification state --------------------------
        self._cat: List[int] = [CAT_NONE] * n_slots
        self._opx: List[int] = [0] * n_slots
        #: Per-slot generation counter; a heap event older than the
        #: slot's generation is orphaned (lazy invalidation).
        self._gen: List[int] = [0] * n_slots
        self._heap: list = []
        self._n_active = 0
        self._n_pending = 0
        self._actv4: List[int] = [0, 0, 0, 0]
        #: Ready slots ascending, overall and per op-class index: the
        #: rotations below slice these instead of sorting per cycle.
        self._ready_all: List[int] = []
        self._ready_cls: List[List[int]] = [[], [], [], []]
        sched = sm.scheduler
        self._all_cands = sched.needs_all_candidates
        #: Native ordering mode declared by the scheduler, or None for
        #: the generic call-order-every-cycle path.
        self._mode: Optional[str] = getattr(sched, "dense_order_mode",
                                            None)
        #: Active slots ascending — maintained only for the generic
        #: path, which must hand the scheduler the full active set.
        self._active_all: Optional[List[int]] = \
            [] if self._mode is None else None
        self._rank_order = None
        if self._mode == "gates":
            # Single source of truth for the priority ladder: the rank
            # tables are derived from the scheduler's own class order.
            from repro.core.gates import _CLASS_ORDER
            self._rank_order = {
                highest: tuple(int(cls) for cls in order)
                for highest, order in _CLASS_ORDER.items()}

    # ------------------------------------------------------------------
    # window driver
    # ------------------------------------------------------------------

    def run_window(self, start: int, end: int) -> int:
        """Execute cycles ``[start, end)`` (stopping early on drain).

        Returns the first cycle *not* executed; always > ``start`` when
        the SM is not drained, so the caller's main loop makes progress.
        """
        sm = self.sm
        self.windows += 1
        if sm._sm_tracker is None:
            sm._bind_trackers()
        self._sync_all(start)
        cycle = start
        drained = sm._drained
        step = self._cycle
        while cycle < end and not drained():
            step(cycle)
            cycle += 1
        self.cycles += cycle - start
        return cycle

    # ------------------------------------------------------------------
    # classification state maintenance
    # ------------------------------------------------------------------

    def _sync_all(self, cycle: int) -> None:
        """Rebuild the whole classification state at ``cycle``.

        Called at window entry and after any residency change.  Warp
        caches (and block rows) whose ``(popped, version)`` stamp is
        unchanged cost two list lookups each; the classification itself
        is one batched pass when vectorized.
        """
        sm = self.sm
        n_slots = len(sm.warps)
        self._cat = cat = [CAT_NONE] * n_slots
        self._gen = [0] * n_slots
        self._heap = heap = []
        self._n_active = 0
        self._n_pending = 0
        self._actv4 = [0, 0, 0, 0]
        self._ready_all = []
        self._ready_cls = [[], [], [], []]
        if self._mode is None:
            self._active_all = []
        empty = self._empty
        empty.clear()
        self._dirty.clear()
        block = self.block
        resident = []
        for warp in sm.warps:
            if warp.trace is None:
                if block is not None:
                    block.invalidate(warp.slot)
                continue
            buf = warp.ibuffer
            if not buf:
                if block is not None:
                    block.invalidate(warp.slot)
                if warp.fetch_pc < warp.trace_len:
                    empty.add(warp.slot)
                continue
            self._refresh_cache(warp, buf)
            resident.append(warp)
        if block is None:
            for warp in resident:
                self._classify_slot(warp, cycle)
            return
        # Batched seeding: mirror fresh rows, classify the population
        # in one vector pass, then walk only the non-ready slots for
        # their transition events.
        for warp in resident:
            slot = warp.slot
            popped = warp.fetch_pc - len(warp.ibuffer)
            version = warp.scoreboard.version
            if not block.is_fresh(slot, popped, version):
                head = warp.head_inst
                dest = head.dest
                block.update_row(slot, popped, version,
                                 warp.head_ready_at, warp.head_mem_until,
                                 warp.head_unresolved, head.op_class,
                                 self.sm._ages[slot],
                                 -1 if dest is None else dest)
        generic = self._mode is None
        (n_active, n_pending, actv4, ready,
         active_slots) = block.dense_classify(cycle, generic)
        self._n_active = n_active
        self._n_pending = n_pending
        self._actv4 = list(actv4)
        if generic:
            self._active_all = active_slots
        if ready is not None:
            self._ready_all = ready_list = ready.tolist()
            ready_cls = self._ready_cls
            for slot, opx in zip(ready_list,
                                 block.op_index[ready].tolist()):
                cat[slot] = CAT_READY
                ready_cls[opx].append(slot)
        opx_list = self._opx
        for warp in resident:
            slot = warp.slot
            opx_list[slot] = int(warp.head_inst.op_class)
            if cat[slot] == CAT_READY:
                continue
            if warp.head_unresolved:
                cat[slot] = CAT_UNRES
            elif cycle < warp.head_mem_until:
                cat[slot] = CAT_PEND
                heappush(heap, (warp.head_mem_until, slot, 0))
            else:
                cat[slot] = CAT_WAIT
                heappush(heap, (warp.head_ready_at, slot, 0))

    def _refresh_cache(self, warp, buf) -> None:
        """The scalar stamp-guarded head-summary refresh, verbatim.

        Identical to the memoised refresh in ``SM._classify`` (the
        planner shares it too), so the warp's cached candidates stay
        interchangeable between the kernel and the serial path mid-run.
        """
        scoreboard = warp.scoreboard
        popped = warp.fetch_pc - len(buf)
        version = scoreboard.version
        if popped != warp.cache_popped or version != warp.cache_version:
            head = buf[0]
            (warp.head_ready_at, warp.head_mem_until,
             warp.head_unresolved) = scoreboard.head_status(
                head, self._threshold)
            warp.cache_popped = popped
            warp.cache_version = version
            warp.head_inst = head
            age = self.sm._ages[warp.slot]
            warp.cand_ready = IssueCandidate(warp.slot, age, head, True)
            warp.cand_stalled = (
                IssueCandidate(warp.slot, age, head, False)
                if self._all_cands else None)

    def _classify_slot(self, warp, cycle: int) -> None:
        """(Re)derive one slot's category and add its contributions.

        The slot must currently contribute nothing (fresh sync, or
        :meth:`_remove` just ran).  Pushes at most one transition event
        — the earliest future cycle at which the category can change on
        its own — so each slot has at most one live heap entry.
        """
        slot = warp.slot
        gen = self._gen[slot] + 1
        self._gen[slot] = gen
        opx = int(warp.head_inst.op_class)
        self._opx[slot] = opx
        if warp.head_unresolved:
            self._cat[slot] = CAT_UNRES
            self._n_pending += 1
            return
        mem_until = warp.head_mem_until
        if cycle < mem_until:
            self._cat[slot] = CAT_PEND
            self._n_pending += 1
            heappush(self._heap, (mem_until, slot, gen))
            return
        self._n_active += 1
        self._actv4[opx] += 1
        if self._active_all is not None:
            insort(self._active_all, slot)
        ready_at = warp.head_ready_at
        if cycle >= ready_at:
            self._cat[slot] = CAT_READY
            insort(self._ready_all, slot)
            insort(self._ready_cls[opx], slot)
        else:
            self._cat[slot] = CAT_WAIT
            heappush(self._heap, (ready_at, slot, gen))

    def _remove(self, slot: int) -> None:
        """Retract one slot's contributions (its category becomes NONE)."""
        cat = self._cat[slot]
        if cat >= CAT_WAIT:
            self._n_active -= 1
            opx = self._opx[slot]
            self._actv4[opx] -= 1
            if self._active_all is not None:
                self._active_all.remove(slot)
            if cat == CAT_READY:
                self._ready_all.remove(slot)
                self._ready_cls[opx].remove(slot)
        elif cat:
            self._n_pending -= 1
        self._cat[slot] = CAT_NONE

    def _refresh(self, warp, cycle: int) -> None:
        """Re-sync one non-empty slot after a tracked state change."""
        buf = warp.ibuffer
        popped = warp.fetch_pc - len(buf)
        version = warp.scoreboard.version
        if popped == warp.cache_popped \
                and version == warp.cache_version:
            return  # nothing actually moved; contributions stand
        self._refresh_cache(warp, buf)
        self._remove(warp.slot)
        self._classify_slot(warp, cycle)

    def _invalidate(self, slot: int) -> None:
        """Drop a slot that no longer has a head (freed/empty buffer)."""
        self._remove(slot)
        self._gen[slot] += 1  # orphan any in-flight transition event

    # ------------------------------------------------------------------
    # one dense cycle
    # ------------------------------------------------------------------

    def _cycle(self, cycle: int) -> None:
        sm = self.sm

        # stage 1: writeback (transcribed, collecting resolved slots)
        self._writeback(cycle)

        # stage 2: warp management; any residency change replaces the
        # _resident list object, which forces a full resync.
        resident_before = sm._resident
        sm._manage_warps(cycle)
        if sm._resident is not resident_before:
            self._sync_all(cycle)
        elif self._dirty:
            warps = sm.warps
            for slot in self._dirty:
                warp = warps[slot]
                if warp.ibuffer:
                    self._refresh(warp, cycle)
            self._dirty.clear()

        # stage 3: fetch; classify heads fetch flipped NO_HEAD -> KNOWN.
        sm.stats.fetched += sm.fetch.tick(sm.warps)
        empty = self._empty
        if empty:
            warps = sm.warps
            for slot in [s for s in empty if warps[s].ibuffer]:
                self._refresh(warps[slot], cycle)
                empty.discard(slot)

        # stage 4: classification = due transition events + aggregates.
        heap = self._heap
        if heap and heap[0][0] <= cycle:
            gen = self._gen
            warps = sm.warps
            while heap and heap[0][0] <= cycle:
                slot = heap[0][1]
                if heappop(heap)[2] == gen[slot]:
                    self._remove(slot)
                    self._classify_slot(warps[slot], cycle)
        view = sm._view
        actv = view.actv_counts
        actv4 = self._actv4
        for index, cls in enumerate(OP_CLASSES):
            actv[cls] = actv4[index]
        sm.actv_counts = actv
        if sm._has_blackout:
            blackout = view.type_in_blackout
            for cls in _CUDA_OP_CLASSES:
                doms = sm._blackout_domains[cls]
                flag = bool(doms)
                for domain in doms:
                    gated_since = domain._gated_since
                    if gated_since is None \
                            or cycle - gated_since >= domain.bet:
                        flag = False
                        break
                blackout[cls] = flag
        stats = sm.stats
        n_active = self._n_active
        stats.active_warp_sum += n_active
        stats.pending_warp_sum += self._n_pending
        if n_active > stats.active_warp_max:
            stats.active_warp_max = n_active

        # stage 5: schedule-select + issue walk
        regfile = sm.regfile
        if regfile is not None:
            regfile.begin_cycle()
        ordered = self._order(cycle, view)
        if ordered:
            issued = self._walk(cycle, ordered)
            warps = sm.warps
            for slot in issued:
                warp = warps[slot]
                if warp.ibuffer:
                    self._refresh(warp, cycle)
                else:
                    self._invalidate(slot)
                    if warp.fetch_pc < warp.trace_len:
                        empty.add(slot)
        else:
            width = sm._issue_width
            stats.stalls.no_ready_warp += width
            bus = sm.bus
            if bus.enabled:
                stall = IssueStall(cycle, "no_ready_warp")
                publish = bus.publish
                for _ in range(width):
                    publish(stall)

        # stage 6: power update, cycle count, hooks
        sm._update_power(cycle)
        stats.cycles += 1
        for hook in sm.hooks:
            hook.on_cycle(cycle)

    # ------------------------------------------------------------------
    # stage transcriptions
    # ------------------------------------------------------------------

    def _writeback(self, cycle: int) -> None:
        """``SM._writeback`` with resolved-load slot collection.

        A slot's classification goes stale during writeback exactly
        when its scoreboard version bumps, i.e. when ``resolve_memory``
        ran — a successful non-store access.  Retires and releases
        touch no stamped state.
        """
        sm = self.sm
        dirty = self._dirty
        memory = sm.memory
        if cycle >= memory.next_event:
            for completion in memory.tick(cycle):
                sm._retire(completion.warp_slot)
        for pipe in sm.pipelines:
            flight = pipe._in_flight
            if flight and flight[0][0] <= cycle:
                for done in pipe.drain(cycle):
                    inst = done.inst
                    if inst.is_mem:
                        slot = done.warp_slot
                        if sm._access_memory(cycle, slot, inst) \
                                and not inst.is_store:
                            dirty.add(slot)
                    else:
                        sm._retire(done.warp_slot)
        if sm._retry:
            still_waiting = []
            for slot, inst in sm._retry:
                if not sm._access_memory(cycle, slot, inst,
                                         requeue=False):
                    still_waiting.append((slot, inst))
                elif not inst.is_store:
                    dirty.add(slot)
            sm._retry = still_waiting
        for warp in sm._resident:
            scoreboard = warp.scoreboard
            if cycle >= scoreboard._next_release:
                scoreboard.release_completed(cycle)

    def _order(self, cycle: int, view) -> Optional[List[int]]:
        """The scheduler's issue order for this cycle, as slot indices.

        Native modes replicate the per-cycle mutations of the
        scheduler's ``order`` exactly (GATES' priority update, LRR's
        pointer advance) including on no-ready cycles, because the
        scalar issue stage calls ``order`` unconditionally.  Returns a
        falsy value when nothing is ready.
        """
        sm = self.sm
        sched = sm.scheduler
        mode = self._mode
        if mode is None:
            # Generic path: same candidate list _classify builds, in
            # ascending slot order, then the scheduler's own order().
            candidates: List[IssueCandidate] = []
            rdy = view.rdy_counts
            ready_cls = self._ready_cls
            for index, cls in enumerate(OP_CLASSES):
                rdy[cls] = len(ready_cls[index])
            active_all = self._active_all
            if active_all:
                warps = sm.warps
                cat = self._cat
                all_cands = self._all_cands
                append = candidates.append
                for slot in active_all:
                    warp = warps[slot]
                    if cat[slot] == CAT_READY:
                        append(warp.cand_ready)
                    elif all_cands:
                        append(warp.cand_stalled)
            return [c.slot
                    for c in sched.order(cycle, candidates, view)]
        if mode == "gates":
            sched._update_priority(cycle, view)
            if not self._ready_all:
                return None
            start = (sched._last_slot + 1) % sched.n_slots
            ready_cls = self._ready_cls
            order: List[int] = []
            for opx in self._rank_order[sched._highest]:
                bucket = ready_cls[opx]
                if bucket:
                    order += self._rotate(bucket, start)
            return order
        if mode == "rotate_every_cycle":
            start = sched._pointer
            sched._pointer = (start + 1) % sched.n_slots
            if not self._ready_all:
                return None
            return self._rotate(self._ready_all, start)
        # "rotate_after_last"
        if not self._ready_all:
            return None
        return self._rotate(self._ready_all,
                            (sched._last_slot + 1) % sched.n_slots)

    @staticmethod
    def _rotate(slots: List[int], start: int) -> List[int]:
        """Rotate an ascending unique slot list to begin at ``start``.

        Equivalent to ``rotated_ready`` on slot-ascending candidates:
        slots >= start first, then the wrap-around block.
        """
        index = bisect_left(slots, start)
        if index == 0 or index == len(slots):
            return slots
        return slots[index:] + slots[:index]

    def _walk(self, cycle: int, ordered: List[int]) -> List[int]:
        """The hazard walk of ``SM._issue``'s ordered branch, verbatim.

        ``ordered`` holds slot indices; each maps to the warp's
        memoised ready candidate — the very object the scalar path
        would hand the scheduler, so ``on_issue`` sees identical
        arguments.  Returns the slots that issued, so the caller can
        refresh them (an issue pops the buffer and bumps the version).
        """
        sm = self.sm
        width = sm._issue_width
        issued = 0
        issued_slots: List[int] = []
        regfile = sm.regfile
        stats = sm.stats
        stalls = stats.stalls
        unit_table = sm._unit_table
        warps = sm.warps
        bus = sm.bus
        publish_events = bus.enabled
        for slot in ordered:
            if issued >= width:
                break
            candidate = warps[slot].cand_ready
            inst = candidate.inst
            pipes, doms, n_pipes, is_ldst = unit_table[inst.op_class]
            if is_ldst and sm._retry:
                stalls.mshr_full += 1
                if publish_events:
                    bus.publish(IssueStall(cycle, "mshr_full"))
                continue
            index = slot % n_pipes
            pipe = pipes[index]
            domain = doms[index]
            if domain is not None \
                    and not (domain._gated_since is None
                             and cycle >= domain._wake_done):
                if domain.state(cycle) is DomainState.WAKING:
                    stalls.unit_waking += 1
                    if publish_events:
                        bus.publish(IssueStall(cycle, "unit_waking"))
                    continue
                domain.request_wakeup(cycle)
                if domain._gated_since is not None:
                    stalls.unit_gated += 1
                    if publish_events:
                        bus.publish(IssueStall(cycle, "unit_gated"))
                else:
                    stalls.unit_waking += 1
                    if publish_events:
                        bus.publish(IssueStall(cycle, "unit_waking"))
                continue
            if cycle < pipe._port_free_at:
                stalls.structural += 1
                if publish_events:
                    bus.publish(IssueStall(cycle, "structural"))
                continue
            warp = warps[slot]
            warp.ibuffer.popleft()
            conflict = (regfile.charge(slot, inst)
                        if regfile is not None else 0)
            warp.scoreboard.record_issue(inst, cycle + conflict)
            pipe.issue(cycle, slot, inst, extra_hold=conflict)
            until = sm._sm_busy_until
            if cycle >= until:
                tracker = sm._sm_tracker
                tracker.observe_busy_span(until - sm._sm_span_start)
                tracker.observe_idle_span(cycle - until)
                sm._sm_span_start = cycle
                until = cycle
            pipe_until = pipe.busy_until
            if pipe_until > until:
                until = pipe_until
            sm._sm_busy_until = until
            warp.outstanding += 1
            stats.instructions_issued += 1
            stats.issued_by_class[inst.op_class] += 1
            sm.scheduler.on_issue(cycle, candidate)
            issued += 1
            issued_slots.append(slot)
        return issued_slots


__all__ = ["DenseStepKernel", "CAT_NONE", "CAT_UNRES", "CAT_PEND",
           "CAT_WAIT", "CAT_READY"]
