"""Idle-cycle fast-forward for the SM main loop.

GPGPU workloads under power gating spend long stretches with every
resident warp stalled on a known-latency event — an outstanding DRAM
round trip, a producer a fixed number of cycles from writeback, a gated
unit counting down its break-even time.  Stepping those cycles one by
one does no architectural work: fetch buffers are full, the issue stage
finds nothing ready, the pipelines are empty, and the only state drift
is bulk-replayable accounting (idle counters, round-robin pointers,
cycle counts).

:class:`IdleFastForwarder` detects such spans and jumps the clock over
them.  The design rule that makes bit-identity easy to argue is that
**every cycle on which anything interesting can happen is real-stepped**
through the ordinary ``_step`` path; only provably-quiet maximal
sub-spans are skipped.  "Interesting" cycles are collected as a lower
bound from every stateful component:

* memory — the earliest scheduled load delivery or line fill
  (:meth:`MemorySubsystem.next_completion_cycle`);
* scoreboards — each active/pending head's producer writeback cycles
  and pending-threshold crossings
  (:meth:`Scoreboard.head_event_cycles`); an *unresolved* load blocks
  skipping outright;
* gating domains — gate taking effect, blackout expiry, wakeup
  completion, and the policy's predicted gate-fire cycle
  (:meth:`GatingDomain.next_idle_event`);
* cycle hooks — e.g. the adaptive-epoch controller's epoch-closing
  cycle (``idle_next_event``); a hook without that method disables
  fast-forwarding entirely;
* the launcher — the earliest cycle a queued warp could launch
  (``launch_blocked_until``);
* the scheduler — a pending GATES priority flip under the frozen view
  (``idle_flip_pending``) forces a real step so the flip happens inside
  an ordinary ``order`` call;
* the run cap — ``config.max_cycles``, so an over-long run raises at
  exactly the serial cycle.

When the minimum of those bounds lies beyond the current cycle, the
span up to (but excluding) the bound is applied in bulk: gating-domain
idle/waking counters, warp-population samples, no-ready-warp stall
counters, the fetch and scheduler round-robin pointers, and the cycle
count all advance by exactly what ``span`` individual ``_step`` calls
would have produced.  (The per-pipeline idle trackers need no bulk
update at all: they accumulate busy/idle *spans* between absolute
cycle marks, so a skipped stretch lands in the right idle period when
the next issue — or the end-of-run flush — integrates it.)  The only
serial/fast-forward divergence is *internal* scoreboard garbage
(completed producers are dropped at the next real writeback instead of
every cycle), which is unobservable: a producer whose ready cycle has
passed blocks nothing and classifies as nothing.

Skipping statistics (``skipped_cycles``, ``skips``) live on the
forwarder, *not* in the run's metrics — results stay byte-identical to
serial runs by construction.
"""

from __future__ import annotations

from typing import Optional

from repro.isa.optypes import OpClass
from repro.power.gating import GatingPolicy
from repro.sim.sched.base import SchedulerView


class IdleFastForwarder:
    """Plans and applies idle-span skips for one SM run.

    Built by :meth:`StreamingMultiprocessor.run` when fast-forwarding
    is requested, after all domains and hooks are attached.
    """

    def __init__(self, sm) -> None:
        self.sm = sm
        #: Cycles jumped over instead of stepped (diagnostics only).
        self.skipped_cycles = 0
        #: Number of skip spans applied.
        self.skips = 0
        self._pending_count = 0
        self._view: Optional[SchedulerView] = None
        self.supported = self._check_supported()

    # ------------------------------------------------------------------
    # capability check (once per run)
    # ------------------------------------------------------------------

    def _check_supported(self) -> bool:
        sm = self.sm
        if not sm.scheduler.supports_idle_skip:
            return False
        if sm.regfile is not None:
            # Operand-collector arbitration state has no bulk replay.
            return False
        if not hasattr(sm.launcher, "launch_blocked_until"):
            return False
        for hook in sm.hooks:
            if not hasattr(hook, "idle_next_event"):
                return False
            if hook.idle_next_event(0) <= 0:
                # The hook pins every cycle (e.g. the CCWS decay hook):
                # no span could ever be skipped, so don't pay the
                # planning cost either.
                return False
        for domain in sm.domains.values():
            # A policy that keeps the base idle_cycles_until_gate cannot
            # predict its own gate decision.
            if type(domain.policy).idle_cycles_until_gate \
                    is GatingPolicy.idle_cycles_until_gate:
                return False
        return True

    # ------------------------------------------------------------------
    # driver
    # ------------------------------------------------------------------

    def advance(self, cycle: int) -> int:
        """Skip ahead from ``cycle`` if a quiet span starts here.

        Returns the first cycle that must be real-stepped (== ``cycle``
        when no skip is possible).  On a skip, all bulk accounting for
        the span [cycle, returned) has been applied.
        """
        if not self.supported:
            return cycle
        target = self._plan(cycle)
        if target > cycle:
            self._apply(cycle, target)
            return target
        return cycle

    # ------------------------------------------------------------------
    # planning
    # ------------------------------------------------------------------

    def _plan(self, cycle: int) -> int:
        """Return the earliest interesting cycle >= ``cycle``.

        Any return <= ``cycle`` means "step normally".  Ordered so the
        cheap disqualifiers run first — on busy cycles this should cost
        little more than a few attribute checks.
        """
        sm = self.sm
        if sm.bus.enabled or sm._retry:
            return cycle
        for pipe in sm.pipelines:
            if pipe.is_busy(cycle):
                return cycle

        config = sm.config
        bound: float = config.max_cycles
        threshold = config.memory.pending_threshold
        ibuffer_entries = sm.fetch.ibuffer_entries
        view = SchedulerView()
        actv = view.actv_counts
        pending = 0
        resident = 0
        free_slot = False

        for warp in sm.warps:
            if not warp.occupied:
                free_slot = True
                continue
            resident += 1
            if warp.finished():
                return cycle  # slot frees (and may refill) this cycle
            exhausted = warp.trace_exhausted
            if not exhausted and len(warp.ibuffer) < ibuffer_entries:
                return cycle  # fetch still streams this warp
            head = warp.head()
            if head is None:
                continue  # exhausted, draining outstanding work
            events = warp.scoreboard.head_event_cycles(head, threshold)
            if events is None:
                return cycle  # unresolved load: latency unknown
            if warp.scoreboard.blocking_memory(head, cycle, threshold):
                pending += 1
            else:
                if warp.scoreboard.is_ready(head, cycle):
                    return cycle  # issue will happen
                actv[head.op_class] += 1
            for event in events:
                if cycle < event < bound:
                    bound = event

        mem_event = sm.memory.next_completion_cycle()
        if mem_event <= cycle:
            return cycle
        if mem_event < bound:
            bound = mem_event

        for domain in sm.domains.values():
            event = domain.next_idle_event(cycle)
            if event is None or event <= cycle:
                return cycle
            if event < bound:
                bound = event

        for hook in sm.hooks:
            event = hook.idle_next_event(cycle)
            if event <= cycle:
                return cycle
            if event < bound:
                bound = event

        if sm.launcher.remaining and free_slot:
            event = sm.launcher.launch_blocked_until(cycle, resident)
            if event <= cycle:
                return cycle
            if event < bound:
                bound = event

        if bound <= cycle:
            return cycle

        for cls in (OpClass.INT, OpClass.FP):
            view.type_in_blackout[cls] = sm._type_in_blackout(cycle, cls)
        if sm.scheduler.idle_flip_pending(cycle, view):
            return cycle

        self._view = view
        self._pending_count = pending
        return int(bound)

    # ------------------------------------------------------------------
    # bulk application
    # ------------------------------------------------------------------

    def _apply(self, cycle: int, target: int) -> None:
        """Account the quiet span [cycle, target) in bulk.

        Mirrors exactly what ``span`` ordinary ``_step`` calls would do
        on a no-work cycle; see the module docstring for the argument
        that each per-cycle stage reduces to these updates.
        """
        sm = self.sm
        span = target - cycle
        stats = sm.stats
        view = self._view
        assert view is not None

        # stage 4: classification samples
        n_active = sum(view.actv_counts.values())
        stats.active_warp_sum += span * n_active
        stats.pending_warp_sum += span * self._pending_count
        if n_active > stats.active_warp_max:
            stats.active_warp_max = n_active
        sm.actv_counts = view.actv_counts

        # stage 3: fetch round-robin pointer
        sm.fetch.skip_idle_cycles(span, len(sm.warps))

        # stage 5: empty issue slots + scheduler pointer drift
        stats.stalls.no_ready_warp += span * sm.config.issue_width
        sm.scheduler.skip_idle_cycles(span)

        # stage 6: gating domains.  The idle trackers need no work at
        # all here: they integrate busy/idle spans from absolute cycles
        # at the next issue (or the end-of-run flush), so a skipped
        # span lands in the right idle period automatically.
        for _pipe, domain in sm._gated_pipes:
            domain.skip_idle_cycles(cycle, span)

        stats.cycles += span
        self.skipped_cycles += span
        self.skips += 1
        self._view = None
