"""Quiescent-span fast-forward for the SM main loop.

GPGPU workloads spend long stretches on cycles where the step functions
do no *decision* work — and not only while idle.  Two span families
qualify:

* **Idle spans** — every resident warp stalled on a known-latency
  event: an outstanding DRAM round trip, a producer a fixed number of
  cycles from writeback, a gated unit counting down its break-even
  time.  Fetch buffers are full, nothing issues, the pipelines are
  empty.
* **Busy spans** — work is in flight but its outcome is already
  determined: long-latency pipelines draining toward known completion
  cycles, the ready set empty, fetch quiescent, every scoreboard head
  with a known writeback bound.  Each such cycle the issue stage walks
  an empty ready list and the gating controllers observe "busy" —
  state drift that is bulk-replayable arithmetic.

:class:`SpanFastForwarder` detects both and jumps the clock over them.
The design rule that makes bit-identity easy to argue is that **every
cycle on which anything interesting can happen is real-stepped**
through the ordinary ``_step`` path; only provably-quiet maximal
sub-spans are skipped.  "Interesting" cycles are collected as a lower
bound from every stateful component, each reporting its next
*state-changing* cycle:

* execution pipelines — the oldest in-flight completion
  (:meth:`ExecPipeline.next_state_change`); a drain triggers retires,
  memory accesses and scoreboard resolution, so it always ends a span;
* memory — the earliest scheduled load delivery or line fill
  (:meth:`MemorySubsystem.next_completion_cycle`);
* scoreboards — each head's cached absolute-cycle readiness summary
  (:meth:`Scoreboard.head_status`): the ready flip at ``ready_at`` and
  the pending-set exit at ``mem_until`` are the only cycles its
  classification can change.  A head blocked on an *unresolved* load
  pends until an LDST completion resolves it, so the LDST pipe's drain
  bound covers it (no LDST work in flight forces a real step);
* gating domains — while the attached pipeline is idle, gate taking
  effect, blackout expiry, wakeup completion and the policy's
  predicted gate-fire cycle (:meth:`GatingDomain.next_idle_event`);
  while it is busy, the wake-completion edge and the pipeline's
  busy-until watermark (:meth:`GatingDomain.next_busy_event`);
* cycle hooks — e.g. the adaptive-epoch controller's epoch-closing
  cycle (``idle_next_event``); a hook without that method disables
  fast-forwarding entirely;
* the launcher — the earliest cycle a queued warp could launch
  (``launch_blocked_until``);
* the scheduler — a pending GATES priority flip under the frozen view
  (``idle_flip_pending``) forces a real step so the flip happens inside
  an ordinary ``order`` call;
* the run cap — ``config.max_cycles``, so an over-long run raises at
  exactly the serial cycle.

When the minimum of those bounds lies beyond the current cycle, the
span up to (but excluding) the bound is applied in bulk: gating-domain
idle/waking/busy counters, warp-population samples, no-ready-warp stall
counters, the fetch and scheduler round-robin pointers, and the cycle
count all advance by exactly what ``span`` individual ``_step`` calls
would have produced.  (The per-pipeline idle trackers need no bulk
update at all: they accumulate busy/idle *spans* between absolute
cycle marks, so a skipped stretch lands in the right period when the
next issue — or the end-of-run flush — integrates it.)  The only
serial/fast-forward divergence is *internal* scoreboard garbage
(completed producers are dropped at the next real writeback instead of
every cycle), which is unobservable: a producer whose ready cycle has
passed blocks nothing and classifies as nothing.

Two cost controls keep the planner cheap on cycles it cannot skip:

* the per-warp head scan reuses the SM's incremental classification
  cache (``(popped, scoreboard version)``-stamped), optionally mirrored
  into numpy arrays (:class:`repro.sim.vectorize.HeadStatusBatch`) so
  the ready/pending/bound reductions run vectorised; and
* a failed plan arms an exponential backoff (up to
  :data:`PLAN_BACKOFF_CAP` cycles between attempts), so issue-bound
  stretches degrade to a handful of attribute checks per cycle.
  Planning *timing* cannot affect results — a missed span start only
  shrinks the skipped span — so the backoff trades at most a few
  cycles of coverage for plan cost, never correctness.

Skipping statistics (``skipped_cycles``, ``skips``, ``plans``) live on
the forwarder, *not* in the run's metrics — results stay byte-identical
to serial runs by construction.
"""

from __future__ import annotations

from typing import Optional

from repro.isa.optypes import ExecUnitKind, OpClass
from repro.power.gating import GatingPolicy
from repro.sim.sched.base import IssueCandidate, SchedulerView
from repro.sim.vectorize import (HeadStatusBatch, OP_CLASSES,
                                 numpy_available)

#: Floor of the failed-plan backoff cap: after repeated failures the
#: planner re-arms at most this many cycles later.  Tuned on the
#: device-scale bench: tiny against the spans worth skipping (a DRAM
#: round trip is hundreds of cycles), so the coverage loss stays in the
#: low percent, while issue-bound stretches still shed most of the
#: planning cost.
PLAN_BACKOFF_CAP = 4

#: Ceiling the backoff cap may *adaptively* grow to while the observed
#: skip fraction stays low (a dense regime keeps failing plans — paying
#: a plan every 5 cycles there is pure overhead).  Any skip success
#: walks the cap back down toward :data:`PLAN_BACKOFF_CAP`, so a regime
#: change costs at most a few shortened spans.
ADAPTIVE_BACKOFF_CAP = 64

#: Observation window (cycles) over which the skip fraction is measured
#: before the cap escalates or a dense window is entered.
ADAPT_WINDOW = 256

#: Consecutive failed plans required (on top of a low skip fraction at
#: the fully escalated cap) before a window is handed to the dense-step
#: kernel — the hysteresis that prevents mode thrash on the boundary.
DENSE_ENTER_STREAK = 8

#: Length of one dense-kernel window.  During the window no spans are
#: skipped (the kernel real-steps every cycle, batched), so the window
#: is sized to amortise the planner's re-probe between windows without
#: committing a skippable regime for long.
DENSE_WINDOW = 8192

#: Skip-fraction threshold: below this, span-skipping saves less than
#: batched dense stepping, so the planner escalates its backoff and
#: eventually hands over to the kernel.  (The kernel's measured win on
#: the dense single-SM bench is ~1.5-1.8x, which breaks even with
#: span-skipping at roughly a third of cycles skipped.)
DENSE_SKIP_FRACTION = 0.25

#: Slot-count threshold below which the numpy batch costs more than the
#: plain Python accumulation it replaces.
BATCH_MIN_SLOTS = 16


class SpanFastForwarder:
    """Plans and applies quiescent-span skips for one SM run.

    Built by :meth:`StreamingMultiprocessor.run` when fast-forwarding
    is requested, after all domains and hooks are attached.
    """

    def __init__(self, sm, use_numpy: Optional[bool] = None) -> None:
        self.sm = sm
        #: Cycles jumped over instead of stepped (diagnostics only).
        self.skipped_cycles = 0
        #: Number of skip spans applied.
        self.skips = 0
        #: Number of planning attempts (diagnostics only).
        self.plans = 0
        self._pending_count = 0
        self._view: Optional[SchedulerView] = None
        self._next_plan = 0
        self._backoff = 0
        #: Adaptive ceiling of the failed-plan backoff (satellite of the
        #: dense-kernel work): grows toward ADAPTIVE_BACKOFF_CAP while
        #: the observed skip fraction stays low, shrinks on success.
        self._backoff_cap = PLAN_BACKOFF_CAP
        self._fail_streak = 0
        self._window_mark = 0
        self._window_skipped = 0
        #: End of the current dense-kernel window (exclusive); the SM
        #: main loop hands [cycle, dense_until) to :attr:`kernel` when
        #: this lies ahead.
        self.dense_until = 0
        #: Lazily built DenseStepKernel (mode 3); None until the first
        #: dense window is entered.
        self.kernel = None
        #: Dense windows entered (diagnostics only).
        self.dense_windows = 0
        self._dense_enabled = getattr(sm, "dense_kernel", None) \
            is not False
        self.supported = self._check_supported()
        if use_numpy is None:
            use_numpy = (numpy_available()
                         and len(sm.warps) >= BATCH_MIN_SLOTS)
        self._batch = (HeadStatusBatch(len(sm.warps))
                       if self.supported and use_numpy else None)

    # ------------------------------------------------------------------
    # capability check (once per run)
    # ------------------------------------------------------------------

    def _check_supported(self) -> bool:
        sm = self.sm
        if not sm.scheduler.supports_idle_skip:
            return False
        if sm.regfile is not None:
            # Operand-collector arbitration state has no bulk replay.
            return False
        if not hasattr(sm.launcher, "launch_blocked_until"):
            return False
        for hook in sm.hooks:
            if not hasattr(hook, "idle_next_event"):
                return False
            if hook.idle_next_event(0) <= 0:
                # The hook pins every cycle (e.g. the CCWS decay hook):
                # no span could ever be skipped, so don't pay the
                # planning cost either.
                return False
        for domain in sm.domains.values():
            # A policy that keeps the base idle_cycles_until_gate cannot
            # predict its own gate decision.
            if type(domain.policy).idle_cycles_until_gate \
                    is GatingPolicy.idle_cycles_until_gate:
                return False
        return True

    # ------------------------------------------------------------------
    # driver
    # ------------------------------------------------------------------

    def advance(self, cycle: int) -> int:
        """Skip ahead from ``cycle`` if a quiet span starts here.

        Returns the first cycle that must be real-stepped (== ``cycle``
        when no skip is possible).  On a skip, all bulk accounting for
        the span [cycle, returned) has been applied.
        """
        if not self.supported or cycle < self._next_plan:
            return cycle
        target = self._plan(cycle)
        if target > cycle:
            self._apply(cycle, target)
            self._backoff = 0
            self._fail_streak = 0
            self._window_skipped += target - cycle
            cap = self._backoff_cap
            if cap > PLAN_BACKOFF_CAP:
                # Success: walk the adaptive cap back down so a regime
                # change re-arms frequent planning within a few skips.
                self._backoff_cap = max(PLAN_BACKOFF_CAP, cap >> 1)
            return target
        # Failed plan: back off exponentially.  Timing only moves span
        # *starts* (a span begun mid-backoff is picked up at the next
        # attempt), never what a skipped span replays.
        self.sm.stats.planner_overhead_cycles += 1
        self._fail_streak += 1
        backoff = self._backoff
        self._next_plan = cycle + 1 + backoff
        if backoff < self._backoff_cap:
            self._backoff = backoff + backoff if backoff else 1
        else:
            self._adapt(cycle)
        return cycle

    def _adapt(self, cycle: int) -> None:
        """Adapt to a persistently unskippable stretch (backoff at cap).

        Measures the skip fraction over the trailing observation window;
        while it stays under :data:`DENSE_SKIP_FRACTION`, first the
        backoff cap escalates (cheaper probing), then — with the cap
        fully escalated and a long uninterrupted fail streak — the next
        :data:`DENSE_WINDOW` cycles are handed to the dense-step kernel.
        Adaptation timing, like backoff timing, can only move span
        starts and hand-over points, never what any cycle computes.
        """
        elapsed = cycle - self._window_mark
        if elapsed < ADAPT_WINDOW:
            return
        fraction = self._window_skipped / elapsed
        self._window_mark = cycle
        self._window_skipped = 0
        if fraction >= DENSE_SKIP_FRACTION:
            return
        if self._backoff_cap < ADAPTIVE_BACKOFF_CAP:
            self._backoff_cap <<= 1
        elif self._dense_enabled \
                and self._fail_streak >= DENSE_ENTER_STREAK:
            if self.kernel is None:
                from repro.sim.kernel import DenseStepKernel
                self.kernel = DenseStepKernel(self.sm)
            self.dense_until = cycle + DENSE_WINDOW
            # Measure the next skip fraction from the window's end, so
            # re-entry needs only one ADAPT_WINDOW of fresh evidence.
            self._window_mark = self.dense_until
            self.dense_windows += 1

    # ------------------------------------------------------------------
    # planning
    # ------------------------------------------------------------------

    def _plan(self, cycle: int) -> int:
        """Return the earliest interesting cycle >= ``cycle``.

        Any return <= ``cycle`` means "step normally".  Ordered so the
        cheap disqualifiers run first — on unskippable cycles this
        should cost little more than a few attribute checks.
        """
        sm = self.sm
        self.plans += 1
        if sm.bus.enabled or sm._retry:
            return cycle

        config = sm.config
        bound: float = config.max_cycles

        # Pipeline completions: a drain due this cycle (retire, memory
        # access, scoreboard resolution) forces a real step; later ones
        # bound the span.  Port-release times need no bound — with no
        # ready warp there are no issue attempts, and the structural
        # check at the span-ending cycle derives from timestamps.
        ldst_flight = False
        for pipe in sm.pipelines:
            nxt = pipe.next_state_change(cycle)
            if nxt is not None:
                if nxt <= cycle:
                    return cycle
                if nxt < bound:
                    bound = nxt
                if pipe.kind is ExecUnitKind.LDST:
                    ldst_flight = True

        mem_event = sm.memory.next_completion_cycle()
        if mem_event <= cycle:
            return cycle
        if mem_event < bound:
            bound = mem_event

        threshold = config.memory.pending_threshold
        ibuffer_entries = sm.fetch.ibuffer_entries
        ages = sm._ages
        all_cands = sm.scheduler.needs_all_candidates
        batch = self._batch
        view: Optional[SchedulerView] = None
        actv = None
        if batch is None:
            view = SchedulerView()
            actv = view.actv_counts
        pending = 0
        unresolved_any = False
        resident = 0
        free_slot = False

        for warp in sm.warps:
            if warp.trace is None:
                free_slot = True
                if batch is not None:
                    batch.invalidate(warp.slot)
                continue
            resident += 1
            if warp.finished():
                return cycle  # slot frees (and may refill) this cycle
            buf = warp.ibuffer
            buffered = len(buf)
            if buffered < ibuffer_entries \
                    and warp.fetch_pc < warp.trace_len:
                return cycle  # fetch still streams this warp
            if not buffered:
                if batch is not None:
                    batch.invalidate(warp.slot)
                continue  # exhausted, draining outstanding work
            scoreboard = warp.scoreboard
            popped = warp.fetch_pc - buffered
            version = scoreboard.version
            if popped != warp.cache_popped \
                    or version != warp.cache_version:
                # Same refresh as SM._classify — the planner and the
                # issue stage share one memoised head summary.
                head = buf[0]
                (warp.head_ready_at, warp.head_mem_until,
                 warp.head_unresolved) = scoreboard.head_status(
                    head, threshold)
                warp.cache_popped = popped
                warp.cache_version = version
                warp.head_inst = head
                age = ages[warp.slot]
                warp.cand_ready = IssueCandidate(warp.slot, age, head,
                                                 True)
                warp.cand_stalled = (
                    IssueCandidate(warp.slot, age, head, False)
                    if all_cands else None)
            if batch is not None:
                if not batch.is_fresh(warp.slot, popped, version):
                    batch.update(warp.slot, popped, version,
                                 warp.head_ready_at, warp.head_mem_until,
                                 warp.head_unresolved,
                                 warp.head_inst.op_class)
                continue
            if warp.head_unresolved:
                pending += 1
                unresolved_any = True
            elif cycle < warp.head_mem_until:
                # Pending until the threshold crossing; the ready flip
                # lies strictly beyond it, so mem_until alone bounds.
                pending += 1
                if warp.head_mem_until < bound:
                    bound = warp.head_mem_until
            else:
                if cycle >= warp.head_ready_at:
                    return cycle  # issue will happen
                actv[warp.head_inst.op_class] += 1
                if warp.head_ready_at < bound:
                    bound = warp.head_ready_at

        if batch is not None:
            (ready_any, pending, unresolved_any, actv_counts,
             sb_bound) = batch.classify(cycle)
            if ready_any:
                return cycle
            if sb_bound is not None and sb_bound < bound:
                bound = sb_bound
            view = SchedulerView()
            actv = view.actv_counts
            for index, count in enumerate(actv_counts.tolist()):
                if count:
                    actv[OP_CLASSES[index]] = count

        if unresolved_any and not ldst_flight:
            # An unresolved load with no LDST completion to bound its
            # resolution (cannot happen outside retry pressure, which
            # already bailed) — refuse rather than guess.
            return cycle

        for pipe, domain in sm._gated_pipes:
            if cycle < pipe.busy_until:
                # Busy throughout [cycle, busy_until): the controller
                # observes "busy" each cycle, so only a wake completion
                # (or the busy->idle edge itself) can change behaviour.
                event = domain.next_busy_event(cycle)
                if event is not None:
                    if event <= cycle:
                        return cycle
                    if event < bound:
                        bound = event
                if pipe.busy_until < bound:
                    bound = pipe.busy_until
            else:
                event = domain.next_idle_event(cycle)
                if event is None or event <= cycle:
                    return cycle
                if event < bound:
                    bound = event

        for hook in sm.hooks:
            event = hook.idle_next_event(cycle)
            if event <= cycle:
                return cycle
            if event < bound:
                bound = event

        if sm.launcher.remaining and free_slot:
            event = sm.launcher.launch_blocked_until(cycle, resident)
            if event <= cycle:
                return cycle
            if event < bound:
                bound = event

        if bound <= cycle:
            return cycle

        for cls in (OpClass.INT, OpClass.FP):
            view.type_in_blackout[cls] = sm._type_in_blackout(cycle, cls)
        if sm.scheduler.idle_flip_pending(cycle, view):
            return cycle

        self._view = view
        self._pending_count = pending
        return int(bound)

    # ------------------------------------------------------------------
    # bulk application
    # ------------------------------------------------------------------

    def _apply(self, cycle: int, target: int) -> None:
        """Account the quiet span [cycle, target) in bulk.

        Mirrors exactly what ``span`` ordinary ``_step`` calls would do
        on a no-issue cycle; see the module docstring for the argument
        that each per-cycle stage reduces to these updates.
        """
        sm = self.sm
        span = target - cycle
        stats = sm.stats
        view = self._view
        assert view is not None

        # stage 4: classification samples
        n_active = sum(view.actv_counts.values())
        stats.active_warp_sum += span * n_active
        stats.pending_warp_sum += span * self._pending_count
        if n_active > stats.active_warp_max:
            stats.active_warp_max = n_active
        sm.actv_counts = view.actv_counts

        # stage 3: fetch round-robin pointer
        sm.fetch.skip_idle_cycles(span, len(sm.warps))

        # stage 5: empty issue slots + scheduler pointer drift
        stats.stalls.no_ready_warp += span * sm.config.issue_width
        sm.scheduler.skip_idle_cycles(span)

        # stage 6: gating domains.  Busy pipelines pin the idle counter
        # at zero for the whole span (the span never crosses their
        # busy->idle edge — busy_until bounds it); idle ones accrue
        # idle cycles exactly as serial observation would.  The idle
        # trackers need no work at all here: they integrate busy/idle
        # spans from absolute cycles at the next issue (or the
        # end-of-run flush), so a skipped span lands in the right
        # period automatically.
        for pipe, domain in sm._gated_pipes:
            if cycle < pipe.busy_until:
                domain.skip_busy_cycles(cycle, span)
            else:
                domain.skip_idle_cycles(cycle, span)

        stats.cycles += span
        self.skipped_cycles += span
        self.skips += 1
        self._view = None


#: Backwards-compatible alias — PR 4 shipped the idle-only forwarder
#: under this name and external scripts may still import it.
IdleFastForwarder = SpanFastForwarder
