"""Per-warp register scoreboard.

The scoreboard tracks, for each resident warp, which architectural
registers have an in-flight producer and when that producer will write
back.  It answers the two questions the two-level scheduler needs every
cycle (section 2.1 of the paper):

* *ready bit* -- are all operands of the warp's next instruction
  available (no busy source or destination register)?
* *pending classification* -- is the warp blocked on a **long-latency**
  producer (an outstanding memory load), which moves it from the active
  set to the pending set?

Completion times are recorded when known (ALU latencies and resolved
memory accesses); a just-issued load whose hit/miss outcome is not yet
determined is *unresolved* and treated as long-latency until the cache
responds.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, Tuple

from repro.isa.instructions import Instruction

#: Sentinel completion cycle for producers whose latency is not yet known
#: (loads between LDST issue and cache access).
UNRESOLVED = -1


@dataclass
class _Producer:
    """In-flight producer of one register."""

    ready_cycle: int  # cycle the value becomes readable, or UNRESOLVED
    is_memory: bool   # produced by a load (long-latency candidate)


class Scoreboard:
    """Register dependence tracking for one warp.

    The SM owns one scoreboard per resident warp slot; slots are recycled
    via :meth:`reset` when a new warp becomes resident.
    """

    def __init__(self) -> None:
        self._busy: Dict[int, _Producer] = {}
        # Count of in-flight memory producers; lets the per-cycle
        # pending-set classification skip the scan for the (common)
        # warps with no outstanding loads.
        self._mem_count = 0

    def reset(self) -> None:
        """Forget all in-flight producers (new warp occupies the slot)."""
        self._busy.clear()
        self._mem_count = 0

    # ------------------------------------------------------------------
    # issue-side interface
    # ------------------------------------------------------------------

    def is_ready(self, inst: Instruction, cycle: int) -> bool:
        """True when ``inst`` could issue at ``cycle`` (RAW/WAW clean).

        A register is *available* once the current cycle has reached its
        producer's ready cycle.
        """
        if not self._busy:
            return True
        for reg in inst.srcs:
            if self._is_busy(reg, cycle):
                return False
        if inst.dest is not None and self._is_busy(inst.dest, cycle):
            return False
        return True

    def blocking_memory(self, inst: Instruction, cycle: int,
                        pending_threshold: int) -> bool:
        """True when ``inst`` waits on a long-latency memory producer.

        This is the two-level scheduler's pending-set criterion: the warp
        is blocked on a producer that is a memory load and either still
        unresolved or more than ``pending_threshold`` cycles from writing
        back.
        """
        if self._mem_count == 0:
            return False
        for reg in self._operand_registers(inst):
            producer = self._busy.get(reg)
            if producer is None or not producer.is_memory:
                continue
            if producer.ready_cycle == UNRESOLVED:
                return True
            if producer.ready_cycle - cycle > pending_threshold:
                return True
        return False

    def record_issue(self, inst: Instruction, cycle: int) -> None:
        """Mark ``inst``'s destination busy at issue time.

        ALU destinations get a known ready cycle (issue + latency); load
        destinations start unresolved and are refined by
        :meth:`resolve_memory` once the cache classifies the access.
        """
        if inst.dest is None:
            return
        if inst.is_load:
            previous = self._busy.get(inst.dest)
            if previous is None or not previous.is_memory:
                self._mem_count += 1
            self._busy[inst.dest] = _Producer(UNRESOLVED, is_memory=True)
        else:
            previous = self._busy.get(inst.dest)
            if previous is not None and previous.is_memory:
                self._mem_count -= 1
            self._busy[inst.dest] = _Producer(cycle + inst.latency,
                                              is_memory=False)

    # ------------------------------------------------------------------
    # completion-side interface
    # ------------------------------------------------------------------

    def resolve_memory(self, reg: int, ready_cycle: int) -> None:
        """Set the writeback time of an outstanding load's destination."""
        producer = self._busy.get(reg)
        if producer is None or not producer.is_memory:
            raise KeyError(f"register r{reg} has no outstanding load")
        producer.ready_cycle = ready_cycle

    def release_completed(self, cycle: int) -> None:
        """Drop producers whose values are readable at ``cycle``.

        Called once per cycle; keeping completed producers around any
        longer would spuriously block dependants.
        """
        if not self._busy:
            return
        done = [reg for reg, producer in self._busy.items()
                if producer.ready_cycle != UNRESOLVED
                and producer.ready_cycle <= cycle]
        for reg in done:
            if self._busy[reg].is_memory:
                self._mem_count -= 1
            del self._busy[reg]

    # ------------------------------------------------------------------
    # fast-forward support
    # ------------------------------------------------------------------

    def head_event_cycles(self, inst: Instruction,
                          pending_threshold: int):
        """Cycles at which ``inst``'s readiness/classification can change.

        For the idle fast-forward planner: returns the list of future
        cycles where a producer of ``inst`` writes back (flipping the
        ready bit) or crosses the pending threshold (moving the warp
        between the pending and active sets).  Returns ``None`` when any
        producer is UNRESOLVED — its completion time is unknown, so the
        planner must not skip (in practice an unresolved load is resolved
        by the LDST pipe within a real-stepped cycle or two).
        """
        events = []
        for reg in self._operand_registers(inst):
            producer = self._busy.get(reg)
            if producer is None:
                continue
            if producer.ready_cycle == UNRESOLVED:
                return None
            events.append(producer.ready_cycle)
            if producer.is_memory:
                events.append(producer.ready_cycle - pending_threshold)
        return events

    # ------------------------------------------------------------------
    # introspection
    # ------------------------------------------------------------------

    def busy_registers(self) -> Tuple[int, ...]:
        """Registers with an in-flight producer (diagnostics/tests)."""
        return tuple(sorted(self._busy))

    def outstanding_memory_registers(self) -> Tuple[int, ...]:
        """Registers awaiting a memory value (diagnostics/tests)."""
        return tuple(sorted(reg for reg, p in self._busy.items()
                            if p.is_memory))

    def _is_busy(self, reg: int, cycle: int) -> bool:
        producer = self._busy.get(reg)
        if producer is None:
            return False
        if producer.ready_cycle == UNRESOLVED:
            return True
        return producer.ready_cycle > cycle

    @staticmethod
    def _operand_registers(inst: Instruction) -> Iterable[int]:
        yield from inst.srcs
        if inst.dest is not None:
            yield inst.dest
