"""Per-warp register scoreboard.

The scoreboard tracks, for each resident warp, which architectural
registers have an in-flight producer and when that producer will write
back.  It answers the two questions the two-level scheduler needs every
cycle (section 2.1 of the paper):

* *ready bit* -- are all operands of the warp's next instruction
  available (no busy source or destination register)?
* *pending classification* -- is the warp blocked on a **long-latency**
  producer (an outstanding memory load), which moves it from the active
  set to the pending set?

Completion times are recorded when known (ALU latencies and resolved
memory accesses); a just-issued load whose hit/miss outcome is not yet
determined is *unresolved* and treated as long-latency until the cache
responds.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, Tuple

from repro.isa.instructions import Instruction

#: Sentinel completion cycle for producers whose latency is not yet known
#: (loads between LDST issue and cache access).
UNRESOLVED = -1

_INF = float("inf")


@dataclass(slots=True)
class _Producer:
    """In-flight producer of one register."""

    ready_cycle: int  # cycle the value becomes readable, or UNRESOLVED
    is_memory: bool   # produced by a load (long-latency candidate)


class Scoreboard:
    """Register dependence tracking for one warp.

    The SM owns one scoreboard per resident warp slot; slots are recycled
    via :meth:`reset` when a new warp becomes resident.
    """

    __slots__ = ("_busy", "_mem_count", "version", "_next_release")

    def __init__(self) -> None:
        self._busy: Dict[int, _Producer] = {}
        # Count of in-flight memory producers; lets the per-cycle
        # pending-set classification skip the scan for the (common)
        # warps with no outstanding loads.
        self._mem_count = 0
        #: Bumped whenever the producer set changes in a way that can
        #: alter a head instruction's readiness summary (issue, memory
        #: resolution, slot reset).  The SM caches :meth:`head_status`
        #: results keyed on this, so per-cycle classification is two
        #: integer compares instead of an operand scan.  Dropping
        #: *completed* producers deliberately does NOT bump it: a
        #: producer past its ready cycle contributes only past-cycle
        #: bounds to the summary, which every ``cycle >= bound``
        #: comparison already treats as satisfied.
        self.version = 0
        # Earliest writeback among resolved producers: lets
        # release_completed return without scanning on cycles where
        # nothing can complete.
        self._next_release: float = _INF

    def reset(self) -> None:
        """Forget all in-flight producers (new warp occupies the slot)."""
        self._busy.clear()
        self._mem_count = 0
        self.version += 1
        self._next_release = _INF

    # ------------------------------------------------------------------
    # issue-side interface
    # ------------------------------------------------------------------

    def is_ready(self, inst: Instruction, cycle: int) -> bool:
        """True when ``inst`` could issue at ``cycle`` (RAW/WAW clean).

        A register is *available* once the current cycle has reached its
        producer's ready cycle.
        """
        if not self._busy:
            return True
        for reg in inst.srcs:
            if self._is_busy(reg, cycle):
                return False
        if inst.dest is not None and self._is_busy(inst.dest, cycle):
            return False
        return True

    def blocking_memory(self, inst: Instruction, cycle: int,
                        pending_threshold: int) -> bool:
        """True when ``inst`` waits on a long-latency memory producer.

        This is the two-level scheduler's pending-set criterion: the warp
        is blocked on a producer that is a memory load and either still
        unresolved or more than ``pending_threshold`` cycles from writing
        back.
        """
        if self._mem_count == 0:
            return False
        for reg in self._operand_registers(inst):
            producer = self._busy.get(reg)
            if producer is None or not producer.is_memory:
                continue
            if producer.ready_cycle == UNRESOLVED:
                return True
            if producer.ready_cycle - cycle > pending_threshold:
                return True
        return False

    def record_issue(self, inst: Instruction, cycle: int) -> None:
        """Mark ``inst``'s destination busy at issue time.

        ALU destinations get a known ready cycle (issue + latency); load
        destinations start unresolved and are refined by
        :meth:`resolve_memory` once the cache classifies the access.
        """
        if inst.dest is None:
            return
        self.version += 1
        if inst.is_load:
            previous = self._busy.get(inst.dest)
            if previous is None or not previous.is_memory:
                self._mem_count += 1
            self._busy[inst.dest] = _Producer(UNRESOLVED, is_memory=True)
        else:
            previous = self._busy.get(inst.dest)
            if previous is not None and previous.is_memory:
                self._mem_count -= 1
            ready = cycle + inst.latency
            self._busy[inst.dest] = _Producer(ready, is_memory=False)
            if ready < self._next_release:
                self._next_release = ready

    # ------------------------------------------------------------------
    # completion-side interface
    # ------------------------------------------------------------------

    def resolve_memory(self, reg: int, ready_cycle: int) -> None:
        """Set the writeback time of an outstanding load's destination."""
        producer = self._busy.get(reg)
        if producer is None or not producer.is_memory:
            raise KeyError(f"register r{reg} has no outstanding load")
        producer.ready_cycle = ready_cycle
        self.version += 1
        if ready_cycle < self._next_release:
            self._next_release = ready_cycle

    def release_completed(self, cycle: int) -> None:
        """Drop producers whose values are readable at ``cycle``.

        O(1) on quiet cycles: a min-tracked next-release bound
        (maintained at issue and memory resolution) proves nothing can
        complete, so no scan happens.  Completed producers are never
        observable anyway — every readiness predicate compares the
        current cycle against the producer's ready cycle — but dropping
        them keeps the producer map (and the debug accessors) tight.
        """
        if cycle < self._next_release:
            return
        busy = self._busy
        done = [reg for reg, producer in busy.items()
                if producer.ready_cycle != UNRESOLVED
                and producer.ready_cycle <= cycle]
        for reg in done:
            if busy[reg].is_memory:
                self._mem_count -= 1
            del busy[reg]
        nxt: float = _INF
        for producer in busy.values():
            ready = producer.ready_cycle
            if ready != UNRESOLVED and ready < nxt:
                nxt = ready
        self._next_release = nxt

    # ------------------------------------------------------------------
    # incremental classification support
    # ------------------------------------------------------------------

    def head_status(self, inst: Instruction,
                    pending_threshold: int) -> Tuple[int, int, bool]:
        """Absolute-cycle readiness summary of ``inst``.

        Returns ``(ready_at, mem_until, unresolved)`` such that, for any
        cycle while :attr:`version` is unchanged:

        * ``is_ready(inst, c)``  ⇔  ``not unresolved and c >= ready_at``
        * ``blocking_memory(inst, c, t)``  ⇔  ``unresolved or
          c < mem_until`` (with the same ``pending_threshold`` ``t``).

        This is what lets the SM classify a warp per cycle with two
        integer compares: the summary only changes when a producer is
        recorded or resolved (both bump :attr:`version`), never with the
        passage of time.  Completed-producer cleanup keeps it valid too:
        a dropped producer can only lower the (already passed) bounds.

        The summary doubles as the scoreboard's next-state-change report
        for the fast-forward planner: while :attr:`version` holds, the
        *only* cycles at which this head's classification can move are
        ``mem_until`` (pending set -> active set) and ``ready_at`` (the
        ready flip, always past ``mem_until`` for a memory-blocked
        head), so those two bounds are exactly what a quiescent span
        must not cross.  An ``unresolved`` head pends until an LDST
        completion resolves it — an event the pipeline drain bounds
        already cover.
        """
        ready_at = 0
        mem_until = 0
        unresolved = False
        busy = self._busy
        if busy:
            get = busy.get
            for reg in self._operand_registers(inst):
                producer = get(reg)
                if producer is None:
                    continue
                ready = producer.ready_cycle
                if ready == UNRESOLVED:
                    unresolved = True
                    continue
                if ready > ready_at:
                    ready_at = ready
                if producer.is_memory:
                    limit = ready - pending_threshold
                    if limit > mem_until:
                        mem_until = limit
        return ready_at, mem_until, unresolved

    # ------------------------------------------------------------------
    # introspection (debug-only: never called from the cycle loop)
    # ------------------------------------------------------------------

    def busy_registers(self) -> Tuple[int, ...]:
        """Registers with an in-flight producer (diagnostics/tests).

        Debug-only accessor: builds a sorted tuple on every call, so it
        must stay out of the per-cycle path — the simulator itself only
        consults :meth:`head_status` / :meth:`is_ready` /
        :meth:`blocking_memory`.
        """
        return tuple(sorted(self._busy))

    def outstanding_memory_registers(self) -> Tuple[int, ...]:
        """Registers awaiting a memory value (diagnostics/tests).

        Debug-only accessor — see :meth:`busy_registers`.
        """
        return tuple(sorted(reg for reg, p in self._busy.items()
                            if p.is_memory))

    def _is_busy(self, reg: int, cycle: int) -> bool:
        producer = self._busy.get(reg)
        if producer is None:
            return False
        if producer.ready_cycle == UNRESOLVED:
            return True
        return producer.ready_cycle > cycle

    @staticmethod
    def _operand_registers(inst: Instruction) -> Iterable[int]:
        yield from inst.srcs
        if inst.dest is not None:
            yield inst.dest
