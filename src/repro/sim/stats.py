"""Statistics collection for the SM model.

Everything the paper's figures need is gathered here per run:

* per-pipeline busy/idle accounting and **idle-period length
  histograms** (Figure 3),
* active/pending warp population samples (Figure 5b),
* issue counts per instruction type (Figure 5a denominators) and issue
  stall reasons (diagnostics for the scheduler/PG interplay),
* end-to-end cycle count (Figure 10's performance metric).

Power-gating state counters (gated cycles, wakeups, critical wakeups)
live with the controllers in :mod:`repro.power.gating`; the harness
merges both sides into experiment records.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List

from repro.isa.optypes import OpClass


class IdlePeriodTracker:
    """Histogram of maximal idle-run lengths for one pipeline.

    An *idle period* is a maximal run of cycles during which the pipeline
    holds no work (its power-gating domain may be ON or gated — gated
    cycles are by definition idle).  The paper partitions these lengths
    into three regions (Figure 3): shorter than idle-detect, between
    idle-detect and idle-detect+BET, and beyond.
    """

    def __init__(self) -> None:
        self.histogram: Dict[int, int] = {}
        self._current_run = 0
        self.busy_cycles = 0
        self.idle_cycles = 0
        self._finalized = False

    @property
    def finalized(self) -> bool:
        """True once the books are closed (trailing run flushed)."""
        return self._finalized

    def observe(self, busy: bool) -> None:
        """Record one cycle of pipeline state.

        Raises RuntimeError after :meth:`finalize` — a late observation
        would silently split the trailing idle period into two histogram
        entries and corrupt the Figure 3 distribution, so it fails loudly
        instead.
        """
        if self._finalized:
            raise RuntimeError(
                "IdlePeriodTracker.observe() after finalize(): the "
                "trailing idle period is already flushed; build a fresh "
                "tracker for a new run")
        if busy:
            self.busy_cycles += 1
            if self._current_run:
                self.histogram[self._current_run] = \
                    self.histogram.get(self._current_run, 0) + 1
                self._current_run = 0
        else:
            self.idle_cycles += 1
            self._current_run += 1

    def observe_busy_span(self, span: int) -> None:
        """Record ``span`` consecutive busy cycles in one call.

        Exactly equivalent to ``span`` calls of ``observe(True)``: the
        first busy cycle closes the current idle run (one histogram
        entry), the rest just extend the busy count.  ``span == 0`` is a
        no-op and leaves any open idle run open.  Together with
        :meth:`observe_idle_span` this is the span-based accumulation
        interface the SM's zero-overhead stats path uses: busy/idle
        state changes only happen at issue boundaries, so the SM
        integrates whole spans there instead of touching the tracker
        every cycle.
        """
        if self._finalized:
            raise RuntimeError(
                "IdlePeriodTracker.observe_busy_span() after finalize(): "
                "build a fresh tracker for a new run")
        if span <= 0:
            return
        self.busy_cycles += span
        if self._current_run:
            self.histogram[self._current_run] = \
                self.histogram.get(self._current_run, 0) + 1
            self._current_run = 0

    def observe_idle_span(self, span: int) -> None:
        """Record ``span`` consecutive idle cycles in one call.

        Exactly equivalent to ``span`` calls of ``observe(False)`` — the
        cycles extend the current idle run without closing it — but O(1).
        Used by the fast-forward path (:mod:`repro.sim.fastforward`).
        """
        if self._finalized:
            raise RuntimeError(
                "IdlePeriodTracker.observe_idle_span() after finalize(): "
                "build a fresh tracker for a new run")
        self.idle_cycles += span
        self._current_run += span

    def finalize(self) -> None:
        """Flush a trailing idle run at end of simulation.

        Explicitly idempotent: the harness and the timeline/analysis
        paths may both finalize the same run, and the second (and any
        later) call must not touch the histogram.
        """
        if self._finalized:
            return
        self._finalized = True
        if self._current_run:
            self.histogram[self._current_run] = \
                self.histogram.get(self._current_run, 0) + 1
            self._current_run = 0

    @property
    def total_periods(self) -> int:
        """Number of completed idle periods."""
        return sum(self.histogram.values())

    def recorded_idle_cycles(self) -> int:
        """Idle cycles accounted in completed periods (invariant hook)."""
        return sum(length * count for length, count in self.histogram.items())

    def export_metrics(self, registry, unit: str) -> None:
        """Publish this tracker into a metrics registry: busy/idle
        cycle counters plus the idle-period length histogram, all
        labelled ``unit="<pipeline>"``."""
        registry.counter("busy_cycles", unit=unit).inc(self.busy_cycles)
        registry.counter("idle_cycles", unit=unit).inc(self.idle_cycles)
        histogram = registry.histogram("idle_period_length", unit=unit)
        for length, count in self.histogram.items():
            histogram.observe(length, count)


@dataclass
class IssueStalls:
    """Why issue slots went unused (diagnostics, ablations)."""

    no_ready_warp: int = 0       # nothing ready in the active set
    structural: int = 0          # unit port held by an earlier warp
    unit_gated: int = 0          # blackout: unit asleep, issue forbidden
    unit_waking: int = 0         # conventional PG: wakeup in progress
    mshr_full: int = 0           # LDST blocked on memory back-pressure


@dataclass
class SMStats:
    """Aggregated statistics for one SM run."""

    cycles: int = 0
    instructions_issued: int = 0
    instructions_retired: int = 0
    fetched: int = 0
    issued_by_class: Dict[OpClass, int] = field(
        default_factory=lambda: {cls: 0 for cls in OpClass})
    stalls: IssueStalls = field(default_factory=IssueStalls)

    # Warp-population sampling (one sample per cycle).
    active_warp_sum: int = 0
    active_warp_max: int = 0
    pending_warp_sum: int = 0

    #: Cycles on which the span fast-forward planner ran a full plan
    #: and failed (pure overhead — nothing was skipped).  Deliberately
    #: NOT exported to the metrics registry: a fast-forwarded run's
    #: metrics must stay byte-identical to the serial run's (the golden
    #: identity harness digests ``result.metrics`` wholesale), and
    #: serial runs never plan.  Surfaced through the bench rows instead
    #: (``benchmarks/bench_core.py``).
    planner_overhead_cycles: int = 0

    # name -> tracker for every pipeline in the SM.
    idle_trackers: Dict[str, IdlePeriodTracker] = field(default_factory=dict)

    def sample_warp_population(self, active: int, pending: int) -> None:
        """Record this cycle's active/pending set sizes."""
        self.active_warp_sum += active
        self.pending_warp_sum += pending
        if active > self.active_warp_max:
            self.active_warp_max = active

    @property
    def avg_active_warps(self) -> float:
        """Average active-set size over the run (Figure 5b)."""
        return self.active_warp_sum / self.cycles if self.cycles else 0.0

    @property
    def avg_pending_warps(self) -> float:
        """Average pending-set size over the run."""
        return self.pending_warp_sum / self.cycles if self.cycles else 0.0

    @property
    def ipc(self) -> float:
        """Warp instructions retired per cycle."""
        return self.instructions_retired / self.cycles if self.cycles else 0.0

    def tracker(self, name: str) -> IdlePeriodTracker:
        """Get (or lazily create) the idle tracker for a pipeline."""
        if name not in self.idle_trackers:
            self.idle_trackers[name] = IdlePeriodTracker()
        return self.idle_trackers[name]

    def finalize(self) -> None:
        """Flush open idle runs at end of run."""
        for tracker in self.idle_trackers.values():
            tracker.finalize()

    def export_metrics(self, registry) -> None:
        """Publish the SM-level counters into a metrics registry.

        Together with :meth:`GatingStats.export_metrics` and
        :meth:`IdlePeriodTracker.export_metrics` this makes the registry
        a complete, unified view over the run's legacy counters.
        """
        registry.counter("sim_cycles").inc(self.cycles)
        registry.counter("instructions_issued").inc(self.instructions_issued)
        registry.counter("instructions_retired").inc(
            self.instructions_retired)
        registry.counter("instructions_fetched").inc(self.fetched)
        for cls, count in self.issued_by_class.items():
            registry.counter("issued", op_class=cls.name).inc(count)
        for reason in ("no_ready_warp", "structural", "unit_gated",
                       "unit_waking", "mshr_full"):
            registry.counter("issue_stalls", reason=reason).inc(
                getattr(self.stalls, reason))
        registry.gauge("avg_active_warps").set(self.avg_active_warps)
        registry.gauge("avg_pending_warps").set(self.avg_pending_warps)
        registry.gauge("max_active_warps").set(self.active_warp_max)
        registry.gauge("ipc").set(self.ipc)
        for name, tracker in self.idle_trackers.items():
            tracker.export_metrics(registry, unit=name)

    def idle_fraction(self, pipeline_names: List[str]) -> float:
        """Idle cycles / total cycles, averaged over ``pipeline_names``.

        This is the y-axis quantity of Figure 8a before normalisation to
        the baseline scheduler.
        """
        if not pipeline_names or self.cycles == 0:
            return 0.0
        total_idle = sum(self.idle_trackers[name].idle_cycles
                         for name in pipeline_names)
        return total_idle / (self.cycles * len(pipeline_names))
