"""Lost-locality detection for cache-conscious scheduling (CCWS).

Rogers et al.'s Cache-Conscious Wavefront Scheduling (cited by the
paper's related-work section) observes that over-subscribed L1s thrash:
a warp's working set gets evicted by other warps before it can reuse
it.  CCWS detects this with per-warp *victim tag arrays* (VTAs): when a
line a warp brought in is evicted, its tag enters that warp's VTA; if
the warp later misses on a tag in its own VTA, the miss is *lost
locality* — the data would have hit had fewer warps been sharing the
cache.  An aggregate lost-locality score then throttles how many warps
may issue.

:class:`LostLocalityMonitor` implements the detection half (wired into
:class:`repro.sim.memory.MemorySubsystem`); the throttling half lives in
:class:`repro.sim.sched.ccws.CCWSScheduler`.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Dict


class LostLocalityMonitor:
    """Per-warp victim tag arrays and a decaying lost-locality score."""

    def __init__(self, vta_entries: int = 16,
                 score_per_event: float = 32.0,
                 decay_per_cycle: float = 0.03) -> None:
        if vta_entries < 1:
            raise ValueError("vta_entries must be >= 1")
        if score_per_event <= 0:
            raise ValueError("score_per_event must be positive")
        if decay_per_cycle < 0:
            raise ValueError("decay_per_cycle must be >= 0")
        self.vta_entries = vta_entries
        self.score_per_event = score_per_event
        self.decay_per_cycle = decay_per_cycle
        self._vtas: Dict[int, OrderedDict] = {}
        self._scores: Dict[int, float] = {}
        self.lost_locality_events = 0
        self.evictions_recorded = 0

    # ------------------------------------------------------------------
    # memory-side hooks
    # ------------------------------------------------------------------

    def record_eviction(self, owner_warp: int, line: int) -> None:
        """A line brought in by ``owner_warp`` was evicted."""
        vta = self._vtas.setdefault(owner_warp, OrderedDict())
        if line in vta:
            vta.move_to_end(line)
        else:
            if len(vta) >= self.vta_entries:
                vta.popitem(last=False)
            vta[line] = None
        self.evictions_recorded += 1

    def record_miss(self, warp: int, line: int) -> bool:
        """Classify a miss; True when it hits the warp's own VTA."""
        vta = self._vtas.get(warp)
        if vta is None or line not in vta:
            return False
        del vta[line]
        self._scores[warp] = self._scores.get(warp, 0.0) \
            + self.score_per_event
        self.lost_locality_events += 1
        return True

    # ------------------------------------------------------------------
    # scheduler-side queries
    # ------------------------------------------------------------------

    def on_cycle(self, cycle: int) -> None:
        """Decay every warp's score (point-system leak, as in CCWS)."""
        if self.decay_per_cycle == 0.0:
            return
        for warp in list(self._scores):
            score = self._scores[warp] - self.decay_per_cycle
            if score <= 0.0:
                del self._scores[warp]
            else:
                self._scores[warp] = score

    def score_of(self, warp: int) -> float:
        """Current lost-locality score of one warp."""
        return self._scores.get(warp, 0.0)

    def total_score(self) -> float:
        """Aggregate lost-locality score across warps."""
        return sum(self._scores.values())

    def clear_warp(self, warp: int) -> None:
        """Forget a warp's state (its slot was recycled)."""
        self._vtas.pop(warp, None)
        self._scores.pop(warp, None)
