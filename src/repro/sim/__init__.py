"""Cycle-level GPGPU streaming-multiprocessor substrate.

This package is the stand-in for GPGPU-Sim v3.02: a trace-driven,
cycle-level model of a Fermi (GTX480-class) SM with

* a fetch/decode front end feeding per-warp instruction buffers
  (:mod:`repro.sim.frontend`),
* a per-warp register scoreboard (:mod:`repro.sim.scoreboard`),
* a two-level warp scheduler issue stage (:mod:`repro.sim.sched`),
* SP clusters (INT + FP pipelines), SFU and LDST groups
  (:mod:`repro.sim.exec_units`),
* an L1 cache / MSHR / DRAM-latency memory model
  (:mod:`repro.sim.memory`),
* per-domain power-gating hooks and statistics
  (:mod:`repro.sim.stats`, :mod:`repro.power`).

The top-level entry points are :class:`repro.sim.sm.StreamingMultiprocessor`
for a single SM and :class:`repro.sim.gpu.GPU` for a multi-SM device.
"""

from repro.sim.config import SMConfig, MemoryConfig
from repro.sim.sm import StreamingMultiprocessor, SimResult
from repro.sim.gpu import GPU, GPUResult

__all__ = [
    "SMConfig",
    "MemoryConfig",
    "StreamingMultiprocessor",
    "SimResult",
    "GPU",
    "GPUResult",
]
