"""The streaming-multiprocessor cycle model.

One :class:`StreamingMultiprocessor` replays a :class:`KernelTrace`
cycle by cycle through the stages of Figure 1a:

1. **writeback** — memory values arrive, execution pipelines drain,
   scoreboards release completed producers;
2. **warp management** — finished warps free their slots, queued warps
   launch (successive thread blocks refilling the SM);
3. **fetch/decode** — round-robin fill of per-warp I-buffers;
4. **classification** — each resident warp's head instruction is sorted
   into the pending set (blocked on a long-latency memory event) or the
   active set, with its ready bit and type counters (the two-level
   scheduler's data structures, plus GATES' ACTV/RDY counters);
5. **issue** — the plugged-in scheduler orders ready candidates; the SM
   walks the order, resolving structural and power-gating hazards, until
   the dual-issue width is filled;
6. **power-gating update** — every pipeline reports busy/idle to its
   idle-period tracker and (if gated) its gating domain; epoch hooks
   (Adaptive idle-detect) tick last.

Schedulers and gating policies are injected, so every technique in the
paper — and every ablation — runs on the identical substrate.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Protocol, Tuple

from repro.isa.instructions import Instruction
from repro.isa.optypes import ExecUnitKind, OpClass, UNIT_FOR_OP_CLASS
from repro.isa.trace import KernelTrace
from repro.obs.bus import EventBus
from repro.obs.events import IssueStall, KernelBoundary
from repro.obs.metrics import MetricsRegistry
from repro.power.energy import DomainEnergy
from repro.power.gating import DomainState, GatingDomain, GatingStats
from repro.sim.config import SMConfig
from repro.sim.exec_units import ExecPipeline
from repro.sim.frontend import (
    FetchEngine,
    MultiKernelLauncher,
    WarpContext,
    WarpLauncher,
)
from repro.sim.memory import MemoryStats, MemorySubsystem
from repro.sim.regfile import RegisterFileModel
from repro.sim.sched.base import IssueCandidate, SchedulerView, WarpScheduler
from repro.sim.stats import SMStats


class CycleHook(Protocol):
    """Anything ticked once per cycle after the PG update (e.g. the
    Adaptive idle-detect epoch controller)."""

    def on_cycle(self, cycle: int) -> None: ...


@dataclass(frozen=True)
class WarpRecord:
    """Lifetime of one launched warp (load-imbalance analysis)."""

    warp_id: int
    launch_cycle: int
    finish_cycle: int
    instructions: int

    @property
    def lifetime(self) -> int:
        """Cycles between the warp's launch and final completion."""
        return self.finish_cycle - self.launch_cycle


@dataclass
class SimResult:
    """Everything a finished SM run exposes to analysis and harness."""

    kernel_name: str
    technique: str
    cycles: int
    stats: SMStats
    memory: MemoryStats
    domain_stats: Dict[str, GatingStats]
    idle_detect_final: Dict[str, int]
    pipeline_issues: Dict[str, int]
    pipeline_lane_work: Dict[str, float]
    pipelines_by_kind: Dict[ExecUnitKind, Tuple[str, ...]]
    warp_records: Tuple[WarpRecord, ...] = ()
    #: Unified flat metrics view: every legacy counter re-expressed as
    #: ``name{label="value"}`` keys (see :mod:`repro.obs.metrics`).
    metrics: Dict[str, object] = field(default_factory=dict)

    def pipeline_names(self, kind: ExecUnitKind) -> Tuple[str, ...]:
        """Names of the pipelines of one unit kind."""
        return self.pipelines_by_kind.get(kind, ())

    def unit_activity(self, kind: ExecUnitKind) -> DomainEnergy:
        """Summed activity of a unit kind, ready for the energy model.

        ``cycles`` counts domain-cycles: run length times number of
        clusters of the kind, so per-cycle leakage of every cluster is
        represented.
        """
        names = self.pipeline_names(kind)
        gated = sum(self.domain_stats[n].gated_cycles
                    for n in names if n in self.domain_stats)
        events = sum(self.domain_stats[n].gating_events
                     for n in names if n in self.domain_stats)
        issues = sum(self.pipeline_issues.get(n, 0) for n in names)
        lane_work = sum(self.pipeline_lane_work.get(n, 0.0)
                        for n in names)
        return DomainEnergy(cycles=self.cycles * len(names),
                            gated_cycles=gated, issues=issues,
                            gating_events=events,
                            lane_work=min(lane_work, float(issues)))

    def gating_totals(self, kind: ExecUnitKind) -> GatingStats:
        """Merged gating counters across the clusters of one kind."""
        total = GatingStats()
        for name in self.pipeline_names(kind):
            stats = self.domain_stats.get(name)
            if stats is None:
                continue
            total.gating_events += stats.gating_events
            total.wakeups += stats.wakeups
            total.wakeups_uncompensated += stats.wakeups_uncompensated
            total.critical_wakeups += stats.critical_wakeups
            total.gated_cycles += stats.gated_cycles
            total.compensated_cycles += stats.compensated_cycles
            total.uncompensated_cycles += stats.uncompensated_cycles
            total.waking_cycles += stats.waking_cycles
            total.on_cycles += stats.on_cycles
            total.denied_wakeups += stats.denied_wakeups
        return total

    def idle_histogram(self, kind: ExecUnitKind) -> Dict[int, int]:
        """Merged idle-period length histogram for one unit kind."""
        merged: Dict[int, int] = {}
        for name in self.pipeline_names(kind):
            tracker = self.stats.idle_trackers.get(name)
            if tracker is None:
                continue
            for length, count in tracker.histogram.items():
                merged[length] = merged.get(length, 0) + count
        return merged

    def idle_fraction(self, kind: ExecUnitKind) -> float:
        """Idle cycles / run cycles for one unit kind (Figure 8a)."""
        return self.stats.idle_fraction(list(self.pipeline_names(kind)))

    def compensated_metric(self, kind: ExecUnitKind) -> float:
        """Signed compensated-state residency (Figure 8b).

        (compensated - uncompensated) cycles over total domain-cycles;
        negative when windows mostly ended before break-even.
        """
        totals = self.gating_totals(kind)
        denom = self.cycles * max(1, len(self.pipeline_names(kind)))
        return (totals.compensated_cycles
                - totals.uncompensated_cycles) / denom


class StreamingMultiprocessor:
    """Trace-driven cycle model of one GTX480-like SM.

    ``kernel`` may be a single :class:`KernelTrace` or a sequence of
    them; a sequence runs back to back with device-level barriers (and
    optional idle gaps of ``kernel_gap_cycles``) between kernels, the
    way a host application launches dependent kernels.
    """

    def __init__(self, kernel, config: SMConfig,
                 scheduler: WarpScheduler,
                 dram_latency: Optional[int] = None,
                 technique: str = "baseline",
                 kernel_gap_cycles: int = 0,
                 bus: Optional[EventBus] = None,
                 fast_forward: bool = False) -> None:
        if isinstance(kernel, KernelTrace):
            self.kernels: List[KernelTrace] = [kernel]
        else:
            self.kernels = list(kernel)
            if not self.kernels:
                raise ValueError("need at least one kernel")
        self.kernel = self.kernels[0]
        self.config = config
        self.scheduler = scheduler
        self.technique = technique
        #: The SM's event bus — disabled by default (zero cost); enable
        #: before run() and subscribe exporters to collect the stream.
        #: Domains attached later and the scheduler share this instance.
        self.bus = bus if bus is not None else EventBus(enabled=False)
        scheduler.bus = self.bus
        self.memory = MemorySubsystem(config.memory, dram_latency)
        self.fetch = FetchEngine(config.fetch_width, config.ibuffer_entries)

        n_slots = min([config.max_resident_warps]
                      + [k.max_resident_warps for k in self.kernels])
        self.warps: List[WarpContext] = [WarpContext(i) for i in range(n_slots)]
        if len(self.kernels) == 1 and kernel_gap_cycles == 0:
            self.launcher = WarpLauncher(self.kernel, n_slots)
        else:
            self.launcher = MultiKernelLauncher(
                self.kernels, n_slots, gap_cycles=kernel_gap_cycles)
        self._ages: List[int] = [0] * n_slots
        self._age_counter = 0
        self._launch_cycles: List[int] = [0] * n_slots
        self._warp_records: List[WarpRecord] = []

        self.pipelines: List[ExecPipeline] = []
        self._by_kind: Dict[ExecUnitKind, List[ExecPipeline]] = {
            kind: [] for kind in ExecUnitKind}
        for i in range(config.n_sp_clusters):
            self._add_pipeline(ExecPipeline(
                ExecUnitKind.INT, f"INT{i}", config.int_initiation_interval))
            self._add_pipeline(ExecPipeline(
                ExecUnitKind.FP, f"FP{i}", config.fp_initiation_interval))
        self._add_pipeline(ExecPipeline(
            ExecUnitKind.SFU, "SFU", config.sfu_initiation_interval))
        self._add_pipeline(ExecPipeline(
            ExecUnitKind.LDST, "LDST", config.ldst_initiation_interval))

        self.domains: Dict[str, GatingDomain] = {}
        self.hooks: List[CycleHook] = []
        self.regfile: Optional[RegisterFileModel] = (
            RegisterFileModel(config.rf_banks, config.rf_ports_per_bank)
            if config.rf_banks else None)
        self.stats = SMStats()
        #: Active-set occupancy per type this cycle; Coordinated Blackout
        #: policies read this (the hardware INT_ACTV / FP_ACTV counters).
        self.actv_counts: Dict[OpClass, int] = {cls: 0 for cls in OpClass}
        self._retry: List[Tuple[int, Instruction]] = []
        self._ran = False
        self._kernel_index_seen = 0
        #: When True, run() installs an IdleFastForwarder that jumps
        #: over provably-quiet idle spans (bit-identical results; see
        #: repro.sim.fastforward).  The forwarder is built lazily at run
        #: time so domains and hooks attached after construction count.
        self.fast_forward = fast_forward
        self._forwarder = None

    # ------------------------------------------------------------------
    # construction helpers
    # ------------------------------------------------------------------

    def _add_pipeline(self, pipe: ExecPipeline) -> None:
        self.pipelines.append(pipe)
        self._by_kind[pipe.kind].append(pipe)

    def attach_domain(self, pipeline_name: str,
                      domain: GatingDomain) -> None:
        """Attach a power-gating domain to one pipeline by name."""
        if pipeline_name not in {p.name for p in self.pipelines}:
            raise KeyError(f"no pipeline named {pipeline_name!r}")
        self.domains[pipeline_name] = domain
        domain.bus = self.bus

    def add_hook(self, hook: CycleHook) -> None:
        """Register a per-cycle hook (runs after the PG update)."""
        self.hooks.append(hook)

    def pipelines_of(self, kind: ExecUnitKind) -> List[ExecPipeline]:
        """The pipelines serving one unit kind."""
        return self._by_kind[kind]

    # ------------------------------------------------------------------
    # main loop
    # ------------------------------------------------------------------

    def run(self) -> SimResult:
        """Replay the kernel to completion and return the statistics."""
        if self._ran:
            raise RuntimeError("an SM instance runs exactly one kernel; "
                               "build a fresh SM for another run")
        self._ran = True
        self.scheduler.reset()
        if self.fast_forward:
            from repro.sim.fastforward import IdleFastForwarder
            self._forwarder = IdleFastForwarder(self)
        if self.bus.enabled:
            self.bus.publish(KernelBoundary(0, self.kernel.name, 0))
        cycle = 0
        forwarder = self._forwarder
        while not self._drained():
            if cycle >= self.config.max_cycles:
                raise RuntimeError(
                    f"{self.kernel.name}: no drain after "
                    f"{self.config.max_cycles} cycles (deadlock?)")
            if forwarder is not None:
                skipped_to = forwarder.advance(cycle)
                if skipped_to != cycle:
                    cycle = skipped_to
                    continue
            self._step(cycle)
            cycle += 1
        return self._collect(cycle)

    def _drained(self) -> bool:
        return (self.launcher.remaining == 0 and not self._retry
                and all(not w.occupied for w in self.warps))

    def _step(self, cycle: int) -> None:
        self._writeback(cycle)
        self._manage_warps(cycle)
        self.stats.fetched += self.fetch.tick(self.warps)
        candidates, view = self._classify(cycle)
        self._issue(cycle, candidates, view)
        self._update_power(cycle)
        self.stats.cycles += 1
        for hook in self.hooks:
            hook.on_cycle(cycle)

    # ------------------------------------------------------------------
    # stage 1: writeback
    # ------------------------------------------------------------------

    def _writeback(self, cycle: int) -> None:
        for completion in self.memory.tick(cycle):
            self._retire(completion.warp_slot)
        for pipe in self.pipelines:
            for done in pipe.drain(cycle):
                inst = done.inst
                if inst.is_mem:
                    self._access_memory(cycle, done.warp_slot, inst)
                else:
                    self._retire(done.warp_slot)
        if self._retry:
            still_waiting: List[Tuple[int, Instruction]] = []
            for slot, inst in self._retry:
                if not self._access_memory(cycle, slot, inst,
                                           requeue=False):
                    still_waiting.append((slot, inst))
            self._retry = still_waiting
        for warp in self.warps:
            if warp.occupied:
                warp.scoreboard.release_completed(cycle)

    def _access_memory(self, cycle: int, slot: int, inst: Instruction,
                       requeue: bool = True) -> bool:
        """Hand a drained LDST instruction to the memory model.

        Returns False when the MSHR file rejected the access (it will
        retry next cycle and hold the LDST port via back-pressure).
        """
        ready = self.memory.access(cycle, slot, inst)
        if ready is None:
            if requeue:
                self._retry.append((slot, inst))
            return False
        if inst.is_store:
            self._retire(slot)
        else:
            assert inst.dest is not None
            self.warps[slot].scoreboard.resolve_memory(inst.dest, ready)
        return True

    def _retire(self, slot: int) -> None:
        warp = self.warps[slot]
        warp.outstanding -= 1
        warp.retired += 1
        self.stats.instructions_retired += 1
        if warp.outstanding < 0:
            raise RuntimeError(f"warp slot {slot}: retired more than issued")

    # ------------------------------------------------------------------
    # stage 2: warp slot management
    # ------------------------------------------------------------------

    def _manage_warps(self, cycle: int) -> None:
        for warp in self.warps:
            if warp.occupied and warp.finished():
                assert warp.trace is not None
                self._warp_records.append(WarpRecord(
                    warp_id=warp.trace.warp_id,
                    launch_cycle=self._launch_cycles[warp.slot],
                    finish_cycle=cycle,
                    instructions=warp.retired))
                warp.release()
        if self.launcher.remaining:
            resident = sum(1 for w in self.warps if w.occupied)
            for warp in self.warps:
                if warp.occupied:
                    continue
                trace = self.launcher.pop_next(cycle, resident)
                if trace is None:
                    break
                warp.assign(trace)
                self._ages[warp.slot] = self._age_counter
                self._launch_cycles[warp.slot] = cycle
                self._age_counter += 1
                resident += 1
            if self.bus.enabled:
                index = getattr(self.launcher, "current_kernel_index", 0)
                if index != self._kernel_index_seen:
                    self._kernel_index_seen = index
                    self.bus.publish(KernelBoundary(
                        cycle, self.kernels[index].name, index))

    # ------------------------------------------------------------------
    # stage 4: active/pending classification
    # ------------------------------------------------------------------

    def _classify(self, cycle: int) -> Tuple[List[IssueCandidate],
                                             SchedulerView]:
        threshold = self.config.memory.pending_threshold
        view = SchedulerView()
        candidates: List[IssueCandidate] = []
        pending = 0
        for warp in self.warps:
            if not warp.occupied:
                continue
            head = warp.head()
            if head is None:
                continue
            if warp.scoreboard.blocking_memory(head, cycle, threshold):
                pending += 1
                continue
            ready = warp.scoreboard.is_ready(head, cycle)
            view.actv_counts[head.op_class] += 1
            if ready:
                view.rdy_counts[head.op_class] += 1
            candidates.append(IssueCandidate(
                slot=warp.slot, age=self._ages[warp.slot],
                inst=head, ready=ready))
        for cls in (OpClass.INT, OpClass.FP):
            view.type_in_blackout[cls] = self._type_in_blackout(cycle, cls)
        self.actv_counts = view.actv_counts
        self.stats.sample_warp_population(len(candidates), pending)
        return candidates, view

    def _type_in_blackout(self, cycle: int, cls: OpClass) -> bool:
        pipes = self._by_kind[UNIT_FOR_OP_CLASS[cls]]
        domains = [self.domains[p.name] for p in pipes
                   if p.name in self.domains]
        return bool(domains) and all(d.in_blackout(cycle) for d in domains)

    # ------------------------------------------------------------------
    # stage 5: issue
    # ------------------------------------------------------------------

    def _issue(self, cycle: int, candidates: List[IssueCandidate],
               view: SchedulerView) -> None:
        ordered = self.scheduler.order(cycle, candidates, view)
        issued = 0
        if self.regfile is not None:
            self.regfile.begin_cycle()
        for candidate in ordered:
            if issued >= self.config.issue_width:
                break
            pipe = self._acquire_unit(cycle, candidate.op_class,
                                      candidate.slot)
            if pipe is None:
                continue
            warp = self.warps[candidate.slot]
            inst = warp.pop_head()
            # Operand-collector bank conflicts delay both the dispatch
            # port and the result; the scoreboard sees the late start.
            conflict = (self.regfile.charge(candidate.slot, inst)
                        if self.regfile is not None else 0)
            warp.scoreboard.record_issue(inst, cycle + conflict)
            pipe.issue(cycle, candidate.slot, inst, extra_hold=conflict)
            warp.outstanding += 1
            self.stats.instructions_issued += 1
            self.stats.issued_by_class[inst.op_class] += 1
            self.scheduler.on_issue(cycle, candidate)
            issued += 1
        if issued < self.config.issue_width and not ordered:
            empty_slots = self.config.issue_width - issued
            self.stats.stalls.no_ready_warp += empty_slots
            if self.bus.enabled:
                for _ in range(empty_slots):
                    self.bus.publish(IssueStall(cycle, "no_ready_warp"))

    def _acquire_unit(self, cycle: int, op_class: OpClass,
                      warp_slot: int) -> Optional[ExecPipeline]:
        """Find the pipeline serving ``op_class`` for this warp.

        CUDA-core (INT/FP) work is *bound* to the warp's home SP cluster
        (``slot mod n_clusters``), modelling Fermi's static warp-to-
        scheduler assignment — a warp cannot migrate to the other
        cluster when its own is busy or asleep.  On a power-gating miss
        the home cluster receives a wakeup request (granted immediately
        under conventional gating, denied while in blackout).
        """
        kind = UNIT_FOR_OP_CLASS[op_class]
        if kind is ExecUnitKind.LDST and self._retry:
            # MSHR back-pressure holds the LDST port for retries.
            self.stats.stalls.mshr_full += 1
            self._publish_stall(cycle, "mshr_full")
            return None
        pipes = self._by_kind[kind]
        pipe = pipes[warp_slot % len(pipes)]
        domain = self.domains.get(pipe.name)
        if domain is not None and not domain.available_for_issue(cycle):
            if domain.state(cycle) is DomainState.WAKING:
                self.stats.stalls.unit_waking += 1
                self._publish_stall(cycle, "unit_waking")
                return None
            domain.request_wakeup(cycle)
            if domain.is_gated(cycle):
                self.stats.stalls.unit_gated += 1
                self._publish_stall(cycle, "unit_gated")
            else:
                self.stats.stalls.unit_waking += 1
                self._publish_stall(cycle, "unit_waking")
            return None
        if not pipe.port_available(cycle):
            self.stats.stalls.structural += 1
            self._publish_stall(cycle, "structural")
            return None
        return pipe

    def _publish_stall(self, cycle: int, reason: str) -> None:
        if self.bus.enabled:
            self.bus.publish(IssueStall(cycle, reason))

    # ------------------------------------------------------------------
    # stage 6: power-gating update
    # ------------------------------------------------------------------

    #: Tracker name for whole-SM execution idleness (every pipeline
    #: empty simultaneously) — the opportunity window that SM-granular
    #: gating schemes like Wang et al. [22] can exploit.
    SM_WIDE_TRACKER = "SM_WIDE"

    def _update_power(self, cycle: int) -> None:
        any_busy = False
        for pipe in self.pipelines:
            busy = pipe.is_busy(cycle)
            any_busy = any_busy or busy
            self.stats.tracker(pipe.name).observe(busy)
            domain = self.domains.get(pipe.name)
            if domain is not None:
                domain.observe(cycle, busy)
        self.stats.tracker(self.SM_WIDE_TRACKER).observe(any_busy)

    # ------------------------------------------------------------------
    # result assembly
    # ------------------------------------------------------------------

    def _collect(self, cycles: int) -> SimResult:
        self.stats.finalize()
        for domain in self.domains.values():
            domain.finalize(cycles)
        name = "+".join(k.name for k in self.kernels) \
            if len(self.kernels) > 1 else self.kernel.name
        registry = MetricsRegistry()
        self.stats.export_metrics(registry)
        for domain_name, domain in self.domains.items():
            domain.stats.export_metrics(registry, domain=domain_name)
            registry.gauge("idle_detect",
                           domain=domain_name).set(domain.idle_detect)
        for pipe in self.pipelines:
            registry.counter("pipeline_issues",
                             unit=pipe.name).inc(pipe.issued_count)
        return SimResult(
            kernel_name=name,
            technique=self.technique,
            cycles=cycles,
            stats=self.stats,
            memory=self.memory.stats,
            domain_stats={name: d.stats for name, d in self.domains.items()},
            idle_detect_final={name: d.idle_detect
                               for name, d in self.domains.items()},
            pipeline_issues={p.name: p.issued_count for p in self.pipelines},
            pipeline_lane_work={p.name: p.lane_work
                                for p in self.pipelines},
            warp_records=tuple(self._warp_records),
            pipelines_by_kind={
                kind: tuple(p.name for p in pipes)
                for kind, pipes in self._by_kind.items()},
            metrics=registry.as_flat_dict(),
        )
