"""The streaming-multiprocessor cycle model.

One :class:`StreamingMultiprocessor` replays a :class:`KernelTrace`
cycle by cycle through the stages of Figure 1a:

1. **writeback** — memory values arrive, execution pipelines drain,
   scoreboards release completed producers;
2. **warp management** — finished warps free their slots, queued warps
   launch (successive thread blocks refilling the SM);
3. **fetch/decode** — round-robin fill of per-warp I-buffers;
4. **classification** — each resident warp's head instruction is sorted
   into the pending set (blocked on a long-latency memory event) or the
   active set, with its ready bit and type counters (the two-level
   scheduler's data structures, plus GATES' ACTV/RDY counters);
5. **issue** — the plugged-in scheduler orders ready candidates; the SM
   walks the order, resolving structural and power-gating hazards, until
   the dual-issue width is filled;
6. **power-gating update** — every pipeline reports busy/idle to its
   idle-period tracker and (if gated) its gating domain; epoch hooks
   (Adaptive idle-detect) tick last.

Schedulers and gating policies are injected, so every technique in the
paper — and every ablation — runs on the identical substrate.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Protocol, Tuple

from repro.isa.instructions import Instruction
from repro.isa.optypes import ExecUnitKind, OpClass, UNIT_FOR_OP_CLASS
from repro.isa.trace import KernelTrace
from repro.obs.bus import EventBus
from repro.obs.events import IssueStall, KernelBoundary
from repro.obs.metrics import MetricsRegistry
from repro.power.energy import DomainEnergy
from repro.power.gating import DomainState, GatingDomain, GatingStats
from repro.sim.config import SMConfig
from repro.sim.exec_units import ExecPipeline
from repro.sim.frontend import (
    FetchEngine,
    MultiKernelLauncher,
    WarpContext,
    WarpLauncher,
)
from repro.sim.memory import MemoryStats, MemorySubsystem
from repro.sim.regfile import RegisterFileModel
from repro.sim.sched.base import IssueCandidate, SchedulerView, WarpScheduler
from repro.sim.stats import SMStats

#: Enum members materialised once — iterating the Enum class itself
#: builds a fresh iterator + genexpr per use, which shows up when done
#: every cycle in the classify/issue path.
_ALL_OP_CLASSES = tuple(OpClass)
_CUDA_OP_CLASSES = (OpClass.INT, OpClass.FP)


class CycleHook(Protocol):
    """Anything ticked once per cycle after the PG update (e.g. the
    Adaptive idle-detect epoch controller)."""

    def on_cycle(self, cycle: int) -> None: ...


@dataclass(frozen=True)
class WarpRecord:
    """Lifetime of one launched warp (load-imbalance analysis)."""

    warp_id: int
    launch_cycle: int
    finish_cycle: int
    instructions: int

    @property
    def lifetime(self) -> int:
        """Cycles between the warp's launch and final completion."""
        return self.finish_cycle - self.launch_cycle


@dataclass
class SimResult:
    """Everything a finished SM run exposes to analysis and harness."""

    kernel_name: str
    technique: str
    cycles: int
    stats: SMStats
    memory: MemoryStats
    domain_stats: Dict[str, GatingStats]
    idle_detect_final: Dict[str, int]
    pipeline_issues: Dict[str, int]
    pipeline_lane_work: Dict[str, float]
    pipelines_by_kind: Dict[ExecUnitKind, Tuple[str, ...]]
    warp_records: Tuple[WarpRecord, ...] = ()
    #: Unified flat metrics view: every legacy counter re-expressed as
    #: ``name{label="value"}`` keys (see :mod:`repro.obs.metrics`).
    metrics: Dict[str, object] = field(default_factory=dict)

    def pipeline_names(self, kind: ExecUnitKind) -> Tuple[str, ...]:
        """Names of the pipelines of one unit kind."""
        return self.pipelines_by_kind.get(kind, ())

    def unit_activity(self, kind: ExecUnitKind) -> DomainEnergy:
        """Summed activity of a unit kind, ready for the energy model.

        ``cycles`` counts domain-cycles: run length times number of
        clusters of the kind, so per-cycle leakage of every cluster is
        represented.
        """
        names = self.pipeline_names(kind)
        gated = sum(self.domain_stats[n].gated_cycles
                    for n in names if n in self.domain_stats)
        events = sum(self.domain_stats[n].gating_events
                     for n in names if n in self.domain_stats)
        issues = sum(self.pipeline_issues.get(n, 0) for n in names)
        lane_work = sum(self.pipeline_lane_work.get(n, 0.0)
                        for n in names)
        return DomainEnergy(cycles=self.cycles * len(names),
                            gated_cycles=gated, issues=issues,
                            gating_events=events,
                            lane_work=min(lane_work, float(issues)))

    def gating_totals(self, kind: ExecUnitKind) -> GatingStats:
        """Merged gating counters across the clusters of one kind."""
        total = GatingStats()
        for name in self.pipeline_names(kind):
            stats = self.domain_stats.get(name)
            if stats is None:
                continue
            total.gating_events += stats.gating_events
            total.wakeups += stats.wakeups
            total.wakeups_uncompensated += stats.wakeups_uncompensated
            total.critical_wakeups += stats.critical_wakeups
            total.gated_cycles += stats.gated_cycles
            total.compensated_cycles += stats.compensated_cycles
            total.uncompensated_cycles += stats.uncompensated_cycles
            total.waking_cycles += stats.waking_cycles
            total.on_cycles += stats.on_cycles
            total.denied_wakeups += stats.denied_wakeups
        return total

    def idle_histogram(self, kind: ExecUnitKind) -> Dict[int, int]:
        """Merged idle-period length histogram for one unit kind."""
        merged: Dict[int, int] = {}
        for name in self.pipeline_names(kind):
            tracker = self.stats.idle_trackers.get(name)
            if tracker is None:
                continue
            for length, count in tracker.histogram.items():
                merged[length] = merged.get(length, 0) + count
        return merged

    def idle_fraction(self, kind: ExecUnitKind) -> float:
        """Idle cycles / run cycles for one unit kind (Figure 8a)."""
        return self.stats.idle_fraction(list(self.pipeline_names(kind)))

    def compensated_metric(self, kind: ExecUnitKind) -> float:
        """Signed compensated-state residency (Figure 8b).

        (compensated - uncompensated) cycles over total domain-cycles;
        negative when windows mostly ended before break-even.
        """
        totals = self.gating_totals(kind)
        denom = self.cycles * max(1, len(self.pipeline_names(kind)))
        return (totals.compensated_cycles
                - totals.uncompensated_cycles) / denom


class StreamingMultiprocessor:
    """Trace-driven cycle model of one GTX480-like SM.

    ``kernel`` may be a single :class:`KernelTrace` or a sequence of
    them; a sequence runs back to back with device-level barriers (and
    optional idle gaps of ``kernel_gap_cycles``) between kernels, the
    way a host application launches dependent kernels.
    """

    def __init__(self, kernel, config: SMConfig,
                 scheduler: WarpScheduler,
                 dram_latency: Optional[int] = None,
                 technique: str = "baseline",
                 kernel_gap_cycles: int = 0,
                 bus: Optional[EventBus] = None,
                 fast_forward: bool = False,
                 dense_kernel: Optional[bool] = None) -> None:
        if isinstance(kernel, KernelTrace):
            self.kernels: List[KernelTrace] = [kernel]
        else:
            self.kernels = list(kernel)
            if not self.kernels:
                raise ValueError("need at least one kernel")
        self.kernel = self.kernels[0]
        self.config = config
        self.scheduler = scheduler
        self.technique = technique
        #: The SM's event bus — disabled by default (zero cost); enable
        #: before run() and subscribe exporters to collect the stream.
        #: Domains attached later and the scheduler share this instance.
        self.bus = bus if bus is not None else EventBus(enabled=False)
        scheduler.bus = self.bus
        self.memory = MemorySubsystem(config.memory, dram_latency)
        self.fetch = FetchEngine(config.fetch_width, config.ibuffer_entries)

        n_slots = min([config.max_resident_warps]
                      + [k.max_resident_warps for k in self.kernels])
        self.warps: List[WarpContext] = [WarpContext(i) for i in range(n_slots)]
        if len(self.kernels) == 1 and kernel_gap_cycles == 0:
            self.launcher = WarpLauncher(self.kernel, n_slots)
        else:
            self.launcher = MultiKernelLauncher(
                self.kernels, n_slots, gap_cycles=kernel_gap_cycles)
        self._ages: List[int] = [0] * n_slots
        self._age_counter = 0
        self._launch_cycles: List[int] = [0] * n_slots
        self._warp_records: List[WarpRecord] = []

        self.pipelines: List[ExecPipeline] = []
        self._by_kind: Dict[ExecUnitKind, List[ExecPipeline]] = {
            kind: [] for kind in ExecUnitKind}
        for i in range(config.n_sp_clusters):
            self._add_pipeline(ExecPipeline(
                ExecUnitKind.INT, f"INT{i}", config.int_initiation_interval))
            self._add_pipeline(ExecPipeline(
                ExecUnitKind.FP, f"FP{i}", config.fp_initiation_interval))
        self._add_pipeline(ExecPipeline(
            ExecUnitKind.SFU, "SFU", config.sfu_initiation_interval))
        self._add_pipeline(ExecPipeline(
            ExecUnitKind.LDST, "LDST", config.ldst_initiation_interval))

        self.domains: Dict[str, GatingDomain] = {}
        self.hooks: List[CycleHook] = []
        self.regfile: Optional[RegisterFileModel] = (
            RegisterFileModel(config.rf_banks, config.rf_ports_per_bank)
            if config.rf_banks else None)
        self.stats = SMStats()
        #: Active-set occupancy per type this cycle; Coordinated Blackout
        #: policies read this (the hardware INT_ACTV / FP_ACTV counters).
        self.actv_counts: Dict[OpClass, int] = {cls: 0 for cls in OpClass}
        self._retry: List[Tuple[int, Instruction]] = []
        self._ran = False
        self._kernel_index_seen = 0
        #: When True, run() installs a SpanFastForwarder that jumps
        #: over provably-quiescent idle *and* busy spans (bit-identical
        #: results; see repro.sim.fastforward).  The forwarder is built
        #: lazily at run time so domains and hooks attached after
        #: construction count.
        self.fast_forward = fast_forward
        self._forwarder = None
        #: Dense-step kernel policy (:mod:`repro.sim.kernel`): True
        #: forces the whole run through the kernel (the identity tests'
        #: mode), False forbids it, None (default) lets the fast-forward
        #: planner hand over dense windows when the observed skip
        #: fraction is low.  Results are bit-identical either way.
        self.dense_kernel = dense_kernel
        self._kernel_core = None
        # --- hot-loop state (frozen by _prepare at run start) ---------
        self._prepared = False
        self._pending_threshold = config.memory.pending_threshold
        self._issue_width = config.issue_width
        #: Whether the launcher exposes multi-kernel boundaries (the
        #: per-cycle KernelBoundary check reads this instead of paying a
        #: getattr on every instrumented cycle).
        self._multi_kernel = hasattr(self.launcher,
                                     "current_kernel_index")
        #: Occupied warp contexts in slot order; rebuilt by
        #: _manage_warps only when residency changes, so the per-cycle
        #: stages iterate exactly the live warps instead of all slots.
        self._resident: List[WarpContext] = []
        #: Set when a warp *may* have finished (its last outstanding
        #: instruction retired, or an empty trace was assigned);
        #: _manage_warps only scans for finished warps when it is set.
        self._finish_check = False
        #: Persistent per-cycle scheduler view: the counter dicts are
        #: zeroed in place each cycle rather than reallocated.
        self._view = SchedulerView()
        # OpClass -> (pipes, domains, n_pipes, is_ldst) issue dispatch.
        self._unit_table: Dict[OpClass, tuple] = {}
        # (pipe, domain) pairs in pipeline order (gated pipes only).
        self._gated_pipes: List[Tuple[ExecPipeline, GatingDomain]] = []
        # OpClass -> domains consulted for the type-in-blackout flags.
        self._blackout_domains: Dict[OpClass, tuple] = {}
        self._has_blackout = False
        # SM-wide busy watermark + open-span start for the SM_WIDE
        # tracker (same span-based accounting as ExecPipeline's).
        self._sm_tracker = None
        self._sm_busy_until = 0
        self._sm_span_start = 0

    # ------------------------------------------------------------------
    # construction helpers
    # ------------------------------------------------------------------

    def _add_pipeline(self, pipe: ExecPipeline) -> None:
        self.pipelines.append(pipe)
        self._by_kind[pipe.kind].append(pipe)

    def attach_domain(self, pipeline_name: str,
                      domain: GatingDomain) -> None:
        """Attach a power-gating domain to one pipeline by name."""
        if all(p.name != pipeline_name for p in self.pipelines):
            raise KeyError(f"no pipeline named {pipeline_name!r}")
        self.domains[pipeline_name] = domain
        domain.bus = self.bus

    def add_hook(self, hook: CycleHook) -> None:
        """Register a per-cycle hook (runs after the PG update)."""
        self.hooks.append(hook)

    def pipelines_of(self, kind: ExecUnitKind) -> List[ExecPipeline]:
        """The pipelines serving one unit kind."""
        return self._by_kind[kind]

    # ------------------------------------------------------------------
    # main loop
    # ------------------------------------------------------------------

    def run(self) -> SimResult:
        """Replay the kernel to completion and return the statistics."""
        if self._ran:
            raise RuntimeError("an SM instance runs exactly one kernel; "
                               "build a fresh SM for another run")
        self._ran = True
        self.scheduler.reset()
        self._prepare()
        kernel_core = None
        if self.dense_kernel is True:
            # Forced mode: the entire run executes through the dense
            # kernel (bit-identical by construction; the golden tests
            # pin it).  Takes precedence over fast-forwarding.
            from repro.sim.kernel import DenseStepKernel
            kernel_core = self._kernel_core = DenseStepKernel(self)
        elif self.fast_forward:
            from repro.sim.fastforward import SpanFastForwarder
            self._forwarder = SpanFastForwarder(self)
        if self.bus.enabled:
            self.bus.publish(KernelBoundary(0, self.kernel.name, 0))
        cycle = 0
        forwarder = self._forwarder
        max_cycles = self.config.max_cycles
        step = self._step
        drained = self._drained
        while not drained():
            if cycle >= max_cycles:
                raise RuntimeError(
                    f"{self.kernel.name}: no drain after "
                    f"{max_cycles} cycles (deadlock?)")
            if kernel_core is not None:
                cycle = kernel_core.run_window(cycle, max_cycles)
                continue
            if forwarder is not None:
                skipped_to = forwarder.advance(cycle)
                if skipped_to != cycle:
                    cycle = skipped_to
                    continue
                dense_until = forwarder.dense_until
                if dense_until > cycle:
                    # Mode 3: the planner judged this window dense —
                    # hand it to the batched kernel instead of paying
                    # per-cycle planning with nothing to skip.
                    end = dense_until if dense_until < max_cycles \
                        else max_cycles
                    cycle = forwarder.kernel.run_window(cycle, end)
                    continue
            step(cycle)
            cycle += 1
        return self._collect(cycle)

    def _prepare(self) -> None:
        """Freeze the issue/power dispatch tables for the run.

        Called once at run start, after every domain and hook is
        attached: precomputes the OpClass -> (pipes, domains) issue
        table, the gated-pipe list the power update walks, and the
        per-type blackout domain tuples, so the cycle loop never
        re-derives them.  Idle trackers are bound lazily at the first
        real step (see :meth:`_bind_trackers`) to keep a zero-cycle run
        indistinguishable from the legacy per-cycle path, which never
        created them.
        """
        self._prepared = True
        domains = self.domains
        table: Dict[OpClass, tuple] = {}
        for cls in OpClass:
            kind = UNIT_FOR_OP_CLASS[cls]
            pipes = tuple(self._by_kind[kind])
            doms = tuple(domains.get(p.name) for p in pipes)
            table[cls] = (pipes, doms, len(pipes),
                          kind is ExecUnitKind.LDST)
        self._unit_table = table
        self._gated_pipes = [(p, domains[p.name]) for p in self.pipelines
                             if p.name in domains]
        blackout: Dict[OpClass, tuple] = {}
        for cls in (OpClass.INT, OpClass.FP):
            pipes = self._by_kind[UNIT_FOR_OP_CLASS[cls]]
            blackout[cls] = tuple(domains[p.name] for p in pipes
                                  if p.name in domains)
        self._blackout_domains = blackout
        self._has_blackout = any(blackout.values())
        self._resident = [w for w in self.warps if w.trace is not None]
        self._finish_check = True
        self.actv_counts = self._view.actv_counts
        # Per-cycle config reads resolved once.
        self._pending_threshold = self.config.memory.pending_threshold
        self._issue_width = self.config.issue_width

    def _bind_trackers(self) -> None:
        """Create and bind the idle trackers (first real step only).

        Creation order — pipelines in construction order, then SM_WIDE —
        matches the legacy per-cycle path's first _update_power, so the
        ``idle_trackers`` dict iterates identically.
        """
        stats = self.stats
        for pipe in self.pipelines:
            pipe.tracker = stats.tracker(pipe.name)
        self._sm_tracker = stats.tracker(self.SM_WIDE_TRACKER)

    def _drained(self) -> bool:
        return (not self._resident and not self._retry
                and self.launcher.remaining == 0)

    def _step(self, cycle: int) -> None:
        if self._sm_tracker is None:
            self._bind_trackers()
        self._writeback(cycle)
        self._manage_warps(cycle)
        self.stats.fetched += self.fetch.tick(self.warps)
        candidates, view = self._classify(cycle)
        self._issue(cycle, candidates, view)
        self._update_power(cycle)
        self.stats.cycles += 1
        for hook in self.hooks:
            hook.on_cycle(cycle)

    # ------------------------------------------------------------------
    # stage 1: writeback
    # ------------------------------------------------------------------

    def _writeback(self, cycle: int) -> None:
        memory = self.memory
        if cycle >= memory.next_event:
            for completion in memory.tick(cycle):
                self._retire(completion.warp_slot)
        for pipe in self.pipelines:
            flight = pipe._in_flight
            if flight and flight[0][0] <= cycle:
                for done in pipe.drain(cycle):
                    inst = done.inst
                    if inst.is_mem:
                        self._access_memory(cycle, done.warp_slot, inst)
                    else:
                        self._retire(done.warp_slot)
        if self._retry:
            still_waiting: List[Tuple[int, Instruction]] = []
            for slot, inst in self._retry:
                if not self._access_memory(cycle, slot, inst,
                                           requeue=False):
                    still_waiting.append((slot, inst))
            self._retry = still_waiting
        for warp in self._resident:
            scoreboard = warp.scoreboard
            if cycle >= scoreboard._next_release:
                scoreboard.release_completed(cycle)

    def _access_memory(self, cycle: int, slot: int, inst: Instruction,
                       requeue: bool = True) -> bool:
        """Hand a drained LDST instruction to the memory model.

        Returns False when the MSHR file rejected the access (it will
        retry next cycle and hold the LDST port via back-pressure).
        """
        ready = self.memory.access(cycle, slot, inst)
        if ready is None:
            if requeue:
                self._retry.append((slot, inst))
            return False
        if inst.is_store:
            self._retire(slot)
        else:
            assert inst.dest is not None
            self.warps[slot].scoreboard.resolve_memory(inst.dest, ready)
        return True

    def _retire(self, slot: int) -> None:
        warp = self.warps[slot]
        outstanding = warp.outstanding - 1
        warp.outstanding = outstanding
        warp.retired += 1
        self.stats.instructions_retired += 1
        if outstanding <= 0:
            if outstanding < 0:
                raise RuntimeError(
                    f"warp slot {slot}: retired more than issued")
            # The warp may now satisfy finished(); a finished warp
            # always reaches this state through its last retirement,
            # so _manage_warps only scans when this flag is set.
            self._finish_check = True

    # ------------------------------------------------------------------
    # stage 2: warp slot management
    # ------------------------------------------------------------------

    def _manage_warps(self, cycle: int) -> None:
        released = 0
        if self._finish_check:
            self._finish_check = False
            for warp in self._resident:
                if warp.outstanding == 0 and not warp.ibuffer \
                        and warp.fetch_pc >= warp.trace_len:
                    assert warp.trace is not None
                    self._warp_records.append(WarpRecord(
                        warp_id=warp.trace.warp_id,
                        launch_cycle=self._launch_cycles[warp.slot],
                        finish_cycle=cycle,
                        instructions=warp.retired))
                    warp.release()
                    released += 1
        launched = 0
        if self.launcher.remaining:
            resident = len(self._resident) - released
            if resident < len(self.warps):
                for warp in self.warps:
                    if warp.trace is not None:
                        continue
                    trace = self.launcher.pop_next(cycle, resident)
                    if trace is None:
                        break
                    warp.assign(trace)
                    if not warp.trace_len:
                        # A zero-instruction warp is finished already.
                        self._finish_check = True
                    self._ages[warp.slot] = self._age_counter
                    self._launch_cycles[warp.slot] = cycle
                    self._age_counter += 1
                    resident += 1
                    launched += 1
            if self.bus.enabled:
                index = (self.launcher.current_kernel_index
                         if self._multi_kernel else 0)
                if index != self._kernel_index_seen:
                    self._kernel_index_seen = index
                    self.bus.publish(KernelBoundary(
                        cycle, self.kernels[index].name, index))
        if released or launched:
            self._resident = [w for w in self.warps
                              if w.trace is not None]

    # ------------------------------------------------------------------
    # stage 4: active/pending classification
    # ------------------------------------------------------------------

    def _classify(self, cycle: int) -> Tuple[List[IssueCandidate],
                                             SchedulerView]:
        """Build the active set from the per-warp classification caches.

        The readiness summary of each warp's head instruction
        (:meth:`Scoreboard.head_status`) only changes when the head
        itself changes (an issue popped the buffer) or a producer is
        recorded/resolved (the scoreboard version bumps), never with the
        mere passage of time — so the per-cycle work for an unchanged
        warp is two integer compares against cached absolute cycles,
        and the IssueCandidate objects are memoised alongside.
        """
        threshold = self._pending_threshold
        view = self._view
        actv = view.actv_counts
        rdy = view.rdy_counts
        for cls in _ALL_OP_CLASSES:
            actv[cls] = 0
            rdy[cls] = 0
        candidates: List[IssueCandidate] = []
        append = candidates.append
        pending = 0
        active = 0
        all_cands = self.scheduler.needs_all_candidates
        ages = self._ages
        for warp in self._resident:
            buf = warp.ibuffer
            if not buf:
                continue
            scoreboard = warp.scoreboard
            popped = warp.fetch_pc - len(buf)
            if popped != warp.cache_popped \
                    or warp.cache_version != scoreboard.version:
                head = buf[0]
                (warp.head_ready_at, warp.head_mem_until,
                 warp.head_unresolved) = scoreboard.head_status(
                    head, threshold)
                warp.cache_popped = popped
                warp.cache_version = scoreboard.version
                warp.head_inst = head
                age = ages[warp.slot]
                warp.cand_ready = IssueCandidate(warp.slot, age, head,
                                                 True)
                warp.cand_stalled = (
                    IssueCandidate(warp.slot, age, head, False)
                    if all_cands else None)
            if warp.head_unresolved or cycle < warp.head_mem_until:
                pending += 1
                continue
            active += 1
            cls = warp.head_inst.op_class
            actv[cls] += 1
            if cycle >= warp.head_ready_at:
                rdy[cls] += 1
                append(warp.cand_ready)
            elif all_cands:
                append(warp.cand_stalled)
        if self._has_blackout:
            blackout = view.type_in_blackout
            for cls in _CUDA_OP_CLASSES:
                doms = self._blackout_domains[cls]
                flag = bool(doms)
                for domain in doms:
                    gated_since = domain._gated_since
                    if gated_since is None \
                            or cycle - gated_since >= domain.bet:
                        flag = False
                        break
                blackout[cls] = flag
        self.actv_counts = actv
        stats = self.stats
        stats.active_warp_sum += active
        stats.pending_warp_sum += pending
        if active > stats.active_warp_max:
            stats.active_warp_max = active
        return candidates, view

    def _type_in_blackout(self, cycle: int, cls: OpClass) -> bool:
        if self._prepared:
            domains = self._blackout_domains.get(cls, ())
        else:
            pipes = self._by_kind[UNIT_FOR_OP_CLASS[cls]]
            domains = tuple(self.domains[p.name] for p in pipes
                            if p.name in self.domains)
        return bool(domains) and all(d.in_blackout(cycle)
                                     for d in domains)

    # ------------------------------------------------------------------
    # stage 5: issue
    # ------------------------------------------------------------------

    def _issue(self, cycle: int, candidates: List[IssueCandidate],
               view: SchedulerView) -> None:
        """Walk the scheduler's priority order, filling the issue width.

        The unit-acquisition logic (MSHR back-pressure, the warp's home
        SP cluster, power-gating hazards, the structural port check) is
        inlined here against the precomputed ``_unit_table`` — this loop
        plus :meth:`_classify` dominates busy-cycle runtime.  CUDA-core
        (INT/FP) work is *bound* to the warp's home cluster (``slot mod
        n_clusters``), modelling Fermi's static warp-to-scheduler
        assignment — a warp cannot migrate to the other cluster when its
        own is busy or asleep.  On a power-gating miss the home cluster
        receives a wakeup request (granted immediately under
        conventional gating, denied while in blackout).
        """
        ordered = self.scheduler.order(cycle, candidates, view)
        width = self._issue_width
        issued = 0
        regfile = self.regfile
        if regfile is not None:
            regfile.begin_cycle()
        if ordered:
            stats = self.stats
            stalls = stats.stalls
            unit_table = self._unit_table
            warps = self.warps
            bus = self.bus
            publish_events = bus.enabled
            for candidate in ordered:
                if issued >= width:
                    break
                inst = candidate.inst
                pipes, doms, n_pipes, is_ldst = unit_table[inst.op_class]
                if is_ldst and self._retry:
                    # MSHR back-pressure holds the LDST port for retries.
                    stalls.mshr_full += 1
                    if publish_events:
                        bus.publish(IssueStall(cycle, "mshr_full"))
                    continue
                slot = candidate.slot
                index = slot % n_pipes
                pipe = pipes[index]
                domain = doms[index]
                if domain is not None \
                        and not (domain._gated_since is None
                                 and cycle >= domain._wake_done):
                    # Unavailable: replicate the legacy hazard ladder.
                    if domain.state(cycle) is DomainState.WAKING:
                        stalls.unit_waking += 1
                        if publish_events:
                            bus.publish(IssueStall(cycle, "unit_waking"))
                        continue
                    domain.request_wakeup(cycle)
                    if domain._gated_since is not None:
                        stalls.unit_gated += 1
                        if publish_events:
                            bus.publish(IssueStall(cycle, "unit_gated"))
                    else:
                        stalls.unit_waking += 1
                        if publish_events:
                            bus.publish(IssueStall(cycle, "unit_waking"))
                    continue
                if cycle < pipe._port_free_at:
                    stalls.structural += 1
                    if publish_events:
                        bus.publish(IssueStall(cycle, "structural"))
                    continue
                warp = warps[slot]
                warp.ibuffer.popleft()
                # Operand-collector bank conflicts delay both the
                # dispatch port and the result; the scoreboard sees the
                # late start.
                conflict = (regfile.charge(slot, inst)
                            if regfile is not None else 0)
                warp.scoreboard.record_issue(inst, cycle + conflict)
                pipe.issue(cycle, slot, inst, extra_hold=conflict)
                # SM-wide busy watermark (span-based SM_WIDE tracker).
                until = self._sm_busy_until
                if cycle >= until:
                    tracker = self._sm_tracker
                    tracker.observe_busy_span(until - self._sm_span_start)
                    tracker.observe_idle_span(cycle - until)
                    self._sm_span_start = cycle
                    until = cycle
                pipe_until = pipe.busy_until
                if pipe_until > until:
                    until = pipe_until
                self._sm_busy_until = until
                warp.outstanding += 1
                stats.instructions_issued += 1
                stats.issued_by_class[inst.op_class] += 1
                self.scheduler.on_issue(cycle, candidate)
                issued += 1
        else:
            self.stats.stalls.no_ready_warp += width
            bus = self.bus
            if bus.enabled:
                # The per-lane stall records are identical; publish one
                # immutable instance ``width`` times.
                stall = IssueStall(cycle, "no_ready_warp")
                publish = bus.publish
                for _ in range(width):
                    publish(stall)

    # ------------------------------------------------------------------
    # stage 6: power-gating update
    # ------------------------------------------------------------------

    #: Tracker name for whole-SM execution idleness (every pipeline
    #: empty simultaneously) — the opportunity window that SM-granular
    #: gating schemes like Wang et al. [22] can exploit.
    SM_WIDE_TRACKER = "SM_WIDE"

    def _update_power(self, cycle: int) -> None:
        """End-of-cycle power-gating controller updates.

        Idle-period trackers no longer appear here at all: busy/idle
        state only changes at issue boundaries, so per-pipe and SM-wide
        spans are integrated lazily at issue (see
        :meth:`ExecPipeline.issue`) and flushed once by
        :meth:`_flush_spans` — a run without gating domains pays zero
        per-cycle power/stats cost.  Gating domains still observe every
        cycle because their policies read live cross-domain state
        (peer gating, ACTV counts).  Post-writeback, a pipeline is busy
        iff ``cycle < busy_until`` (the issue-maintained watermark).
        """
        for pipe, domain in self._gated_pipes:
            domain.observe(cycle, cycle < pipe.busy_until)

    # ------------------------------------------------------------------
    # result assembly
    # ------------------------------------------------------------------

    def _flush_spans(self, end_cycle: int) -> None:
        """Integrate every open busy/idle span into the idle trackers.

        Together with the issue-time flushes this partitions exactly
        [0, end_cycle) per tracker, reproducing what the legacy
        per-cycle ``observe`` calls accumulated.
        """
        tracker = self._sm_tracker
        if tracker is None:
            return  # zero-cycle run: trackers were never created
        for pipe in self.pipelines:
            pipe.finalize_tracker(end_cycle)
        busy_end = self._sm_busy_until
        if busy_end > end_cycle:
            busy_end = end_cycle
        tracker.observe_busy_span(busy_end - self._sm_span_start)
        if end_cycle > busy_end:
            tracker.observe_idle_span(end_cycle - busy_end)

    def _collect(self, cycles: int) -> SimResult:
        self._flush_spans(cycles)
        self.stats.finalize()
        for domain in self.domains.values():
            domain.finalize(cycles)
        name = "+".join(k.name for k in self.kernels) \
            if len(self.kernels) > 1 else self.kernel.name
        registry = MetricsRegistry()
        self.stats.export_metrics(registry)
        for domain_name, domain in self.domains.items():
            domain.stats.export_metrics(registry, domain=domain_name)
            registry.gauge("idle_detect",
                           domain=domain_name).set(domain.idle_detect)
        for pipe in self.pipelines:
            registry.counter("pipeline_issues",
                             unit=pipe.name).inc(pipe.issued_count)
        return SimResult(
            kernel_name=name,
            technique=self.technique,
            cycles=cycles,
            stats=self.stats,
            memory=self.memory.stats,
            domain_stats={name: d.stats for name, d in self.domains.items()},
            idle_detect_final={name: d.idle_detect
                               for name, d in self.domains.items()},
            pipeline_issues={p.name: p.issued_count for p in self.pipelines},
            pipeline_lane_work={p.name: p.lane_work
                                for p in self.pipelines},
            warp_records=tuple(self._warp_records),
            pipelines_by_kind={
                kind: tuple(p.name for p in pipes)
                for kind, pipes in self._by_kind.items()},
            metrics=registry.as_flat_dict(),
        )
