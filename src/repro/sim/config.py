"""Simulator configuration.

Defaults follow the paper's evaluation setup (section 7.1): a GTX480-like
SM with two SP clusters of 16 double-clocked CUDA cores each (so one SP
cluster retires one warp-instruction per issue cycle), four SFUs, sixteen
LD/ST units, a two-level warp scheduler with dual issue, 48 resident
warps, 4-cycle ALU latency with single-cycle initiation interval, and the
power-gating parameters idle-detect = 5, break-even = 14, wakeup = 3.
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass(frozen=True)
class MemoryConfig:
    """L1 / memory-path parameters.

    Attributes:
        l1_sets: Number of L1 data-cache sets.
        l1_ways: Associativity.
        mshr_entries: Maximum outstanding L1 misses; a full MSHR back-
            pressures the LDST pipeline.
        l1_hit_latency: Extra cycles (beyond the LDST pipeline) for an L1
            hit to produce its value.  Kept short so hit-bound warps
            return to the ready pool quickly — the issue-bound regime
            the paper's idle-period distributions imply.
        shared_latency: Extra cycles for a shared-memory access.
        dram_latency: Extra cycles for an L1 miss (set per benchmark from
            its profile; this is the fallback default).
        dram_jitter: Fractional spread of miss latency due to memory-
            system queueing; each miss deterministically lands in
            ``dram_latency * [1 - jitter, 1 + jitter]``.  Jitter
            de-synchronises warps blocked on the same miss wave, which
            fragments execution-unit idle windows the way real DRAM
            contention does.
        pending_threshold: Remaining-latency boundary between a "short"
            wait (warp stays in the active set, not ready) and a "long
            latency event" that moves the warp to the pending set, per the
            two-level scheduler's definition.
    """

    l1_sets: int = 32
    l1_ways: int = 4
    mshr_entries: int = 32
    l1_hit_latency: int = 10
    shared_latency: int = 6
    dram_latency: int = 400
    dram_jitter: float = 0.35
    pending_threshold: int = 28

    def __post_init__(self) -> None:
        if self.l1_sets < 1 or (self.l1_sets & (self.l1_sets - 1)):
            raise ValueError("l1_sets must be a positive power of two")
        if self.l1_ways < 1:
            raise ValueError("l1_ways must be >= 1")
        if self.mshr_entries < 1:
            raise ValueError("mshr_entries must be >= 1")
        if not 0.0 <= self.dram_jitter < 1.0:
            raise ValueError("dram_jitter must be in [0, 1)")


@dataclass(frozen=True)
class SMConfig:
    """Streaming-multiprocessor structural parameters.

    Attributes:
        n_sp_clusters: SP clusters per SM; each contains one INT and one
            FP pipeline power-gated independently (Fermi: 2, Kepler: 6).
        issue_width: Warp instructions issued per cycle (two schedulers
            on GTX480).
        fetch_width: Decoded instructions delivered to instruction
            buffers per cycle.
        ibuffer_entries: Decoded-instruction slots per warp.
        max_resident_warps: Hardware warp slots (48 on Fermi).
        int_initiation_interval / fp_initiation_interval: Cycles an SP
            pipeline's dispatch port is held per warp instruction (16
            double-clocked lanes serve 32 threads in one issue cycle).
        sfu_initiation_interval: 4 SFUs serve a 32-thread warp over 8
            cycles.
        ldst_initiation_interval: 16 LD/ST units serve a fully coalesced
            warp access in one issue cycle (half-warp per core clock at
            the double-clocked units).
        rf_banks: Register-file banks for the operand-collector
            conflict model (:mod:`repro.sim.regfile`); 0 disables the
            model (default, matching the calibrated headline results).
        rf_ports_per_bank: Read ports per register-file bank.
        memory: Memory-path parameters.
        max_cycles: Hard safety cap; the simulator raises if a kernel
            fails to drain (deadlock guard, not a tuning knob).
    """

    n_sp_clusters: int = 2
    issue_width: int = 2
    fetch_width: int = 4
    ibuffer_entries: int = 2
    max_resident_warps: int = 48
    int_initiation_interval: int = 1
    fp_initiation_interval: int = 1
    sfu_initiation_interval: int = 8
    ldst_initiation_interval: int = 1
    rf_banks: int = 0
    rf_ports_per_bank: int = 1
    memory: MemoryConfig = field(default_factory=MemoryConfig)
    max_cycles: int = 4_000_000

    def __post_init__(self) -> None:
        if self.n_sp_clusters < 1:
            raise ValueError("need at least one SP cluster")
        if self.issue_width < 1:
            raise ValueError("issue_width must be >= 1")
        if self.fetch_width < 1:
            raise ValueError("fetch_width must be >= 1")
        if self.ibuffer_entries < 1:
            raise ValueError("ibuffer_entries must be >= 1")
        if self.max_resident_warps < 1:
            raise ValueError("max_resident_warps must be >= 1")
        for name in ("int_initiation_interval", "fp_initiation_interval",
                     "sfu_initiation_interval", "ldst_initiation_interval"):
            if getattr(self, name) < 1:
                raise ValueError(f"{name} must be >= 1")
        if self.rf_banks < 0:
            raise ValueError("rf_banks must be >= 0 (0 disables)")
        if self.rf_ports_per_bank < 1:
            raise ValueError("rf_ports_per_bank must be >= 1")
        if self.max_cycles < 1:
            raise ValueError("max_cycles must be >= 1")
