"""Front end: resident-warp contexts, instruction buffers and fetch.

Mirrors the fetch/decode stage of Figure 1a: decoded instructions land in
a small per-warp instruction buffer (I-buffer) whose head is the entry
the issue stage sees, carrying the valid bit, decoded bits — including
the two-bit instruction type GATES relies on — and the ready bit driven
by the scoreboard.

Warp launch is also handled here: a kernel may launch more warps than the
SM can host (48 on Fermi); finished warp slots are refilled from the
launch queue, the way successive thread blocks refill a real SM.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, List, Optional, Sequence

from repro.isa.instructions import Instruction
from repro.isa.trace import KernelTrace, WarpTrace
from repro.sim.scoreboard import Scoreboard


class WarpContext:
    """Runtime state of one resident warp slot.

    Slotted and deliberately property-light on the hot paths: the fetch
    and classification stages touch every resident warp every cycle, so
    the per-warp state they read (``trace_len``, ``trace_insts``, the
    ``head_*`` classification cache) is stored as plain attributes.
    """

    __slots__ = ("slot", "trace", "trace_len", "trace_insts", "fetch_pc",
                 "ibuffer", "scoreboard", "retired", "outstanding",
                 "cache_popped", "cache_version", "head_inst",
                 "head_ready_at", "head_mem_until", "head_unresolved",
                 "cand_ready", "cand_stalled")

    #: Class-wide assignment generation, bumped on every ``assign``.
    #: The fetch engine's quiescent fast path (all occupied slots
    #: trace-exhausted => nothing to fetch until a new warp arrives)
    #: keys its validity on this, so it self-invalidates no matter who
    #: assigns the warp — no wiring between launcher and fetch engine.
    assign_generation = 0

    def __init__(self, slot: int) -> None:
        self.slot = slot
        self.trace: Optional[WarpTrace] = None
        #: len(trace), 0 while unoccupied — ``fetch_pc >= trace_len`` is
        #: the branch the fetch loop takes per warp per cycle.
        self.trace_len = 0
        #: The trace's raw instruction sequence (skips WarpTrace.__getitem__).
        self.trace_insts: Sequence[Instruction] = ()
        self.fetch_pc = 0            # next trace index to fetch
        self.ibuffer: Deque[Instruction] = deque()
        self.scoreboard = Scoreboard()
        self.retired = 0
        #: Instructions issued but not yet fully completed (pipeline or
        #: memory); a slot is only recycled when this drains to zero.
        self.outstanding = 0
        # --- incremental classification cache -------------------------
        # Valid while (cache_popped, cache_version) matches the warp's
        # issued-instruction count and its scoreboard version; holds the
        # head instruction's absolute-cycle readiness summary
        # (Scoreboard.head_status) plus memoised IssueCandidate objects,
        # so per-cycle classification is integer compares, not operand
        # scans and allocations.
        self.cache_popped = -1
        self.cache_version = -1
        self.head_inst: Optional[Instruction] = None
        self.head_ready_at = 0
        self.head_mem_until = 0
        self.head_unresolved = False
        self.cand_ready = None
        self.cand_stalled = None

    # ------------------------------------------------------------------

    def assign(self, trace: WarpTrace) -> None:
        """Occupy this slot with a freshly launched warp."""
        WarpContext.assign_generation += 1
        self.trace = trace
        self.trace_len = len(trace)
        self.trace_insts = trace.instructions
        self.fetch_pc = 0
        self.ibuffer.clear()
        self.scoreboard.reset()
        self.retired = 0
        self.outstanding = 0
        self.cache_popped = -1

    @property
    def occupied(self) -> bool:
        """True while a warp lives in this slot."""
        return self.trace is not None

    @property
    def trace_exhausted(self) -> bool:
        """True once every instruction of the warp has been fetched."""
        return self.fetch_pc >= self.trace_len

    def finished(self) -> bool:
        """True once every instruction has issued and completed."""
        return (self.trace is not None and self.fetch_pc >= self.trace_len
                and not self.ibuffer and self.outstanding == 0)

    def head(self) -> Optional[Instruction]:
        """The instruction the issue stage considers for this warp."""
        return self.ibuffer[0] if self.ibuffer else None

    def pop_head(self) -> Instruction:
        """Remove the head instruction at issue."""
        return self.ibuffer.popleft()

    def release(self) -> None:
        """Free the slot after the warp fully completes."""
        self.trace = None
        self.trace_len = 0
        self.trace_insts = ()
        self.ibuffer.clear()
        self.scoreboard.reset()
        self.outstanding = 0
        self.cache_popped = -1


class FetchEngine:
    """Round-robin fetch/decode feeding the per-warp I-buffers."""

    def __init__(self, fetch_width: int, ibuffer_entries: int) -> None:
        if fetch_width < 1:
            raise ValueError("fetch_width must be >= 1")
        if ibuffer_entries < 1:
            raise ValueError("ibuffer_entries must be >= 1")
        self.fetch_width = fetch_width
        self.ibuffer_entries = ibuffer_entries
        self._rr_start = 0
        #: assign_generation at the moment a full scan found no warp
        #: with unfetched trace; while it still matches, tick only
        #: rotates the round-robin pointer (the drain-tail fast path).
        self._quiet_gen = -1

    def tick(self, warps: List[WarpContext]) -> int:
        """Fetch up to ``fetch_width`` instructions into needy buffers.

        Round-robins across warp slots so no warp starves the front end.
        Returns the number of instructions fetched (statistics).

        Hot path: runs every cycle over every slot, so the per-warp
        skip test is two plain attribute compares (an unoccupied slot
        has ``trace_len == 0`` and counts as exhausted) and the fill is
        a bulk slice of the precomputed instruction sequence.
        """
        n = len(warps)
        if n == 0:
            return 0
        if self._quiet_gen == WarpContext.assign_generation:
            # Every occupied slot was trace-exhausted at the last full
            # scan and no warp has been assigned since: nothing can be
            # fetched, only the round-robin pointer moves.
            self._rr_start = (self._rr_start + 1) % n
            return 0
        fetched = 0
        any_room = False
        width = self.fetch_width
        entries = self.ibuffer_entries
        i = self._rr_start
        self._rr_start = (i + 1) % n
        for _ in range(n):
            warp = warps[i]
            i += 1
            if i == n:
                i = 0
            pc = warp.fetch_pc
            room = warp.trace_len - pc
            if room <= 0:
                continue
            any_room = True
            buf = warp.ibuffer
            free = entries - len(buf)
            if free <= 0:
                continue
            take = width - fetched
            if take > free:
                take = free
            if take > room:
                take = room
            insts = warp.trace_insts
            for k in range(pc, pc + take):
                buf.append(insts[k])
            warp.fetch_pc = pc + take
            fetched += take
            if fetched >= width:
                break
        if not any_room:
            self._quiet_gen = WarpContext.assign_generation
        return fetched

    def skip_idle_cycles(self, span: int, n_warps: int) -> None:
        """Replay ``span`` ticks on a quiescent front end.

        When every occupied warp is trace-exhausted or has a full
        I-buffer, ``tick`` fetches nothing and only rotates the
        round-robin pointer — which this replays in bulk for the idle
        fast-forward path.
        """
        if n_warps:
            self._rr_start = (self._rr_start + span) % n_warps


class WarpLauncher:
    """Feeds kernel warps into SM slots as residency frees up."""

    def __init__(self, kernel: KernelTrace, max_resident: int) -> None:
        self.kernel = kernel
        self.max_resident = min(max_resident, kernel.max_resident_warps)
        self._next = 0

    @property
    def remaining(self) -> int:
        """Warps not yet launched."""
        return self.kernel.n_warps - self._next

    def pop_next(self, cycle: int = 0,
                 resident: int = 0) -> Optional[WarpTrace]:
        """Take the next queued warp trace, or None when exhausted.

        ``cycle`` and ``resident`` are accepted (and ignored) so the
        single-kernel launcher is interface-compatible with
        :class:`MultiKernelLauncher`, whose launch decisions depend on
        both.
        """
        if self._next >= self.kernel.n_warps:
            return None
        trace = self.kernel.warps[self._next]
        self._next += 1
        return trace

    def launch_blocked_until(self, cycle: int, resident: int) -> float:
        """Earliest cycle a queued warp could launch (fast-forward bound).

        For the single-kernel launcher a queued warp launches whenever a
        slot frees up, so with warps still queued the answer is "now" —
        the planner then refuses to skip (a free slot plus a queued warp
        means the next cycle does real work).
        """
        if self._next >= self.kernel.n_warps:
            return float("inf")
        return cycle

    def launch_into(self, warps: List[WarpContext]) -> int:
        """Fill free slots (up to the residency cap) with queued warps."""
        launched = 0
        resident = sum(1 for w in warps if w.occupied)
        for warp in warps:
            if self._next >= self.kernel.n_warps:
                break
            if resident >= self.max_resident:
                break
            if not warp.occupied:
                warp.assign(self.kernel.warps[self._next])
                self._next += 1
                resident += 1
                launched += 1
        return launched


class MultiKernelLauncher:
    """Back-to-back kernel launches with barriers and idle gaps.

    Real GPGPU applications launch kernels in sequence: kernel ``k+1``
    cannot start until every thread block of kernel ``k`` has retired
    (a device-level barrier), and host-side work often leaves the SM
    idle for a while in between.  Those inter-kernel windows are where
    *SM-granular* power gating (Wang et al., the paper's section 8
    comparison) earns its keep, so modelling them lets the granularity
    analysis cover both regimes.

    Interface-compatible with :class:`WarpLauncher` as the SM uses it:
    ``remaining`` plus ``pop_next(cycle, resident)``.
    """

    def __init__(self, kernels: "List[KernelTrace]", max_resident: int,
                 gap_cycles: int = 0) -> None:
        if not kernels:
            raise ValueError("need at least one kernel")
        if gap_cycles < 0:
            raise ValueError("gap_cycles must be >= 0")
        self.kernels = list(kernels)
        self.max_resident_cap = max_resident
        self.gap_cycles = gap_cycles
        self._index = 0
        self._inner = WarpLauncher(self.kernels[0], max_resident)
        self._gap_until: Optional[int] = None
        # Warps in kernels after the current one; ``remaining`` is read
        # every cycle, so the suffix sum is cached and refreshed only on
        # kernel advance.
        self._later_warps = sum(k.n_warps for k in self.kernels[1:])
        #: Cycles at which each kernel's first warp launched (stats).
        self.kernel_start_cycles: List[int] = []

    @property
    def max_resident(self) -> int:
        """Residency cap applied to the current kernel."""
        return self._inner.max_resident

    @property
    def remaining(self) -> int:
        """Warps not yet launched, across all queued kernels."""
        return self._inner.remaining + self._later_warps

    @property
    def current_kernel_index(self) -> int:
        """Index of the kernel currently launching."""
        return self._index

    def pop_next(self, cycle: int = 0,
                 resident: int = 0) -> Optional[WarpTrace]:
        """Next warp to launch at ``cycle``, or None.

        Returns None while (a) the current kernel is fully launched but
        its warps still occupy slots (the barrier), or (b) the
        inter-kernel gap has not elapsed.
        """
        if self._inner.remaining:
            if not self.kernel_start_cycles or \
                    self._inner.remaining == self.kernels[self._index].n_warps:
                if len(self.kernel_start_cycles) <= self._index:
                    self.kernel_start_cycles.append(cycle)
            return self._inner.pop_next()
        if self._index + 1 >= len(self.kernels):
            return None
        if resident > 0:
            return None  # barrier: previous kernel still draining
        if self._gap_until is None:
            self._gap_until = cycle + self.gap_cycles
        if cycle < self._gap_until:
            return None
        self._index += 1
        self._inner = WarpLauncher(self.kernels[self._index],
                                   self.max_resident_cap)
        self._later_warps = sum(k.n_warps
                                for k in self.kernels[self._index + 1:])
        self._gap_until = None
        return self.pop_next(cycle, resident)

    def launch_blocked_until(self, cycle: int, resident: int) -> float:
        """Earliest cycle a launch attempt could do something
        (fast-forward bound; mirrors :meth:`pop_next` without mutating).

        Note the ``_gap_until is None`` case returns ``cycle``: the next
        ``pop_next`` call *starts* the gap countdown (a mutation), so the
        planner must real-step it rather than skip over it.
        """
        if self._inner.remaining:
            return cycle
        if self._index + 1 >= len(self.kernels):
            return float("inf")
        if resident > 0:
            return float("inf")  # barrier: launch waits on retirements
        if self._gap_until is None:
            return cycle
        return max(cycle, self._gap_until)
