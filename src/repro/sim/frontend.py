"""Front end: resident-warp contexts, instruction buffers and fetch.

Mirrors the fetch/decode stage of Figure 1a: decoded instructions land in
a small per-warp instruction buffer (I-buffer) whose head is the entry
the issue stage sees, carrying the valid bit, decoded bits — including
the two-bit instruction type GATES relies on — and the ready bit driven
by the scoreboard.

Warp launch is also handled here: a kernel may launch more warps than the
SM can host (48 on Fermi); finished warp slots are refilled from the
launch queue, the way successive thread blocks refill a real SM.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, List, Optional

from repro.isa.instructions import Instruction
from repro.isa.trace import KernelTrace, WarpTrace
from repro.sim.scoreboard import Scoreboard


class WarpContext:
    """Runtime state of one resident warp slot."""

    def __init__(self, slot: int) -> None:
        self.slot = slot
        self.trace: Optional[WarpTrace] = None
        self.fetch_pc = 0            # next trace index to fetch
        self.ibuffer: Deque[Instruction] = deque()
        self.scoreboard = Scoreboard()
        self.retired = 0
        #: Instructions issued but not yet fully completed (pipeline or
        #: memory); a slot is only recycled when this drains to zero.
        self.outstanding = 0

    # ------------------------------------------------------------------

    def assign(self, trace: WarpTrace) -> None:
        """Occupy this slot with a freshly launched warp."""
        self.trace = trace
        self.fetch_pc = 0
        self.ibuffer.clear()
        self.scoreboard.reset()
        self.retired = 0
        self.outstanding = 0

    @property
    def occupied(self) -> bool:
        """True while a warp lives in this slot."""
        return self.trace is not None

    @property
    def trace_exhausted(self) -> bool:
        """True once every instruction of the warp has been fetched."""
        return self.trace is None or self.fetch_pc >= len(self.trace)

    def finished(self) -> bool:
        """True once every instruction has issued and completed."""
        return (self.occupied and self.trace_exhausted
                and not self.ibuffer and self.outstanding == 0)

    def head(self) -> Optional[Instruction]:
        """The instruction the issue stage considers for this warp."""
        return self.ibuffer[0] if self.ibuffer else None

    def pop_head(self) -> Instruction:
        """Remove the head instruction at issue."""
        return self.ibuffer.popleft()

    def release(self) -> None:
        """Free the slot after the warp fully completes."""
        self.trace = None
        self.ibuffer.clear()
        self.scoreboard.reset()
        self.outstanding = 0


class FetchEngine:
    """Round-robin fetch/decode feeding the per-warp I-buffers."""

    def __init__(self, fetch_width: int, ibuffer_entries: int) -> None:
        if fetch_width < 1:
            raise ValueError("fetch_width must be >= 1")
        if ibuffer_entries < 1:
            raise ValueError("ibuffer_entries must be >= 1")
        self.fetch_width = fetch_width
        self.ibuffer_entries = ibuffer_entries
        self._rr_start = 0

    def tick(self, warps: List[WarpContext]) -> int:
        """Fetch up to ``fetch_width`` instructions into needy buffers.

        Round-robins across warp slots so no warp starves the front end.
        Returns the number of instructions fetched (statistics).
        """
        fetched = 0
        n = len(warps)
        if n == 0:
            return 0
        for offset in range(n):
            if fetched >= self.fetch_width:
                break
            warp = warps[(self._rr_start + offset) % n]
            if not warp.occupied or warp.trace_exhausted:
                continue
            while (fetched < self.fetch_width
                   and len(warp.ibuffer) < self.ibuffer_entries
                   and not warp.trace_exhausted):
                assert warp.trace is not None
                warp.ibuffer.append(warp.trace[warp.fetch_pc])
                warp.fetch_pc += 1
                fetched += 1
        self._rr_start = (self._rr_start + 1) % n
        return fetched

    def skip_idle_cycles(self, span: int, n_warps: int) -> None:
        """Replay ``span`` ticks on a quiescent front end.

        When every occupied warp is trace-exhausted or has a full
        I-buffer, ``tick`` fetches nothing and only rotates the
        round-robin pointer — which this replays in bulk for the idle
        fast-forward path.
        """
        if n_warps:
            self._rr_start = (self._rr_start + span) % n_warps


class WarpLauncher:
    """Feeds kernel warps into SM slots as residency frees up."""

    def __init__(self, kernel: KernelTrace, max_resident: int) -> None:
        self.kernel = kernel
        self.max_resident = min(max_resident, kernel.max_resident_warps)
        self._next = 0

    @property
    def remaining(self) -> int:
        """Warps not yet launched."""
        return self.kernel.n_warps - self._next

    def pop_next(self, cycle: int = 0,
                 resident: int = 0) -> Optional[WarpTrace]:
        """Take the next queued warp trace, or None when exhausted.

        ``cycle`` and ``resident`` are accepted (and ignored) so the
        single-kernel launcher is interface-compatible with
        :class:`MultiKernelLauncher`, whose launch decisions depend on
        both.
        """
        if self._next >= self.kernel.n_warps:
            return None
        trace = self.kernel.warps[self._next]
        self._next += 1
        return trace

    def launch_blocked_until(self, cycle: int, resident: int) -> float:
        """Earliest cycle a queued warp could launch (fast-forward bound).

        For the single-kernel launcher a queued warp launches whenever a
        slot frees up, so with warps still queued the answer is "now" —
        the planner then refuses to skip (a free slot plus a queued warp
        means the next cycle does real work).
        """
        if self._next >= self.kernel.n_warps:
            return float("inf")
        return cycle

    def launch_into(self, warps: List[WarpContext]) -> int:
        """Fill free slots (up to the residency cap) with queued warps."""
        launched = 0
        resident = sum(1 for w in warps if w.occupied)
        for warp in warps:
            if self._next >= self.kernel.n_warps:
                break
            if resident >= self.max_resident:
                break
            if not warp.occupied:
                warp.assign(self.kernel.warps[self._next])
                self._next += 1
                resident += 1
                launched += 1
        return launched


class MultiKernelLauncher:
    """Back-to-back kernel launches with barriers and idle gaps.

    Real GPGPU applications launch kernels in sequence: kernel ``k+1``
    cannot start until every thread block of kernel ``k`` has retired
    (a device-level barrier), and host-side work often leaves the SM
    idle for a while in between.  Those inter-kernel windows are where
    *SM-granular* power gating (Wang et al., the paper's section 8
    comparison) earns its keep, so modelling them lets the granularity
    analysis cover both regimes.

    Interface-compatible with :class:`WarpLauncher` as the SM uses it:
    ``remaining`` plus ``pop_next(cycle, resident)``.
    """

    def __init__(self, kernels: "List[KernelTrace]", max_resident: int,
                 gap_cycles: int = 0) -> None:
        if not kernels:
            raise ValueError("need at least one kernel")
        if gap_cycles < 0:
            raise ValueError("gap_cycles must be >= 0")
        self.kernels = list(kernels)
        self.max_resident_cap = max_resident
        self.gap_cycles = gap_cycles
        self._index = 0
        self._inner = WarpLauncher(self.kernels[0], max_resident)
        self._gap_until: Optional[int] = None
        #: Cycles at which each kernel's first warp launched (stats).
        self.kernel_start_cycles: List[int] = []

    @property
    def max_resident(self) -> int:
        """Residency cap applied to the current kernel."""
        return self._inner.max_resident

    @property
    def remaining(self) -> int:
        """Warps not yet launched, across all queued kernels."""
        later = sum(k.n_warps for k in self.kernels[self._index + 1:])
        return self._inner.remaining + later

    @property
    def current_kernel_index(self) -> int:
        """Index of the kernel currently launching."""
        return self._index

    def pop_next(self, cycle: int = 0,
                 resident: int = 0) -> Optional[WarpTrace]:
        """Next warp to launch at ``cycle``, or None.

        Returns None while (a) the current kernel is fully launched but
        its warps still occupy slots (the barrier), or (b) the
        inter-kernel gap has not elapsed.
        """
        if self._inner.remaining:
            if not self.kernel_start_cycles or \
                    self._inner.remaining == self.kernels[self._index].n_warps:
                if len(self.kernel_start_cycles) <= self._index:
                    self.kernel_start_cycles.append(cycle)
            return self._inner.pop_next()
        if self._index + 1 >= len(self.kernels):
            return None
        if resident > 0:
            return None  # barrier: previous kernel still draining
        if self._gap_until is None:
            self._gap_until = cycle + self.gap_cycles
        if cycle < self._gap_until:
            return None
        self._index += 1
        self._inner = WarpLauncher(self.kernels[self._index],
                                   self.max_resident_cap)
        self._gap_until = None
        return self.pop_next(cycle, resident)

    def launch_blocked_until(self, cycle: int, resident: int) -> float:
        """Earliest cycle a launch attempt could do something
        (fast-forward bound; mirrors :meth:`pop_next` without mutating).

        Note the ``_gap_until is None`` case returns ``cycle``: the next
        ``pop_next`` call *starts* the gap countdown (a mutation), so the
        planner must real-step it rather than skip over it.
        """
        if self._inner.remaining:
            return cycle
        if self._index + 1 >= len(self.kernels):
            return float("inf")
        if resident > 0:
            return float("inf")  # barrier: launch waits on retirements
        if self._gap_until is None:
            return cycle
        return max(cycle, self._gap_until)
