"""Banked register-file model.

Figure 1a's SM carries a 128 KB register file; on Fermi it is organised
as banks read through operand collectors.  When the operands of the
instructions issued in one cycle collide on a bank, the collector
serialises the reads and the dispatch port stalls for the extra cycles.

The model is deliberately structural-only: per cycle it counts reads per
bank (a warp instruction reads each source once; all 32 lanes of one
architectural register live in the same bank) and charges each issued
instruction the serialisation its reads add beyond the per-bank port
count.  Registers map to banks with the standard warp-skewed interleave
``(reg + warp) mod banks`` so different warps' same-numbered registers
spread across banks.

Disabled by default (``SMConfig.rf_banks = 0``) to keep the calibrated
headline results identical to EXPERIMENTS.md; enable it to study how
operand-collector pressure interacts with issue clustering (GATES packs
same-type instructions, which slightly raises same-cycle conflict odds —
the `bench_ablations` RF rows quantify it).
"""

from __future__ import annotations

from typing import Dict

from repro.isa.instructions import Instruction


class RegisterFileModel:
    """Per-cycle bank-conflict accounting."""

    def __init__(self, banks: int, ports_per_bank: int = 1) -> None:
        if banks < 1:
            raise ValueError("banks must be >= 1")
        if ports_per_bank < 1:
            raise ValueError("ports_per_bank must be >= 1")
        self.banks = banks
        self.ports_per_bank = ports_per_bank
        self._reads_this_cycle: Dict[int, int] = {}
        self.total_conflict_cycles = 0
        self.total_reads = 0

    def bank_of(self, warp_slot: int, reg: int) -> int:
        """Warp-skewed register-to-bank interleave."""
        return (reg + warp_slot) % self.banks

    def begin_cycle(self) -> None:
        """Reset per-cycle read counts (called once per issue stage)."""
        self._reads_this_cycle.clear()

    def charge(self, warp_slot: int, inst: Instruction) -> int:
        """Record ``inst``'s operand reads; return its stall penalty.

        The penalty is the number of extra serialisation cycles this
        instruction's reads add on its most contended bank, given the
        reads already recorded this cycle.
        """
        penalty = 0
        for reg in inst.registers_read():
            bank = self.bank_of(warp_slot, reg)
            count = self._reads_this_cycle.get(bank, 0) + 1
            self._reads_this_cycle[bank] = count
            self.total_reads += 1
            over = count - self.ports_per_bank
            if over > penalty:
                penalty = over
        self.total_conflict_cycles += penalty
        return penalty

    @property
    def conflict_rate(self) -> float:
        """Conflict cycles per operand read (diagnostics)."""
        if self.total_reads == 0:
            return 0.0
        return self.total_conflict_cycles / self.total_reads
