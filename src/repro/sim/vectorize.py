"""Numpy-batched head-status scans for the fast-forward planner.

The span planner's inner loop asks, for every resident warp, "how is
your head instruction classified at this cycle, and at which future
cycle can that classification change?"  All of that is answered by the
per-warp incremental cache (``head_ready_at`` / ``head_mem_until`` /
``head_unresolved``, see :meth:`repro.sim.scoreboard.Scoreboard.
head_status`) — two absolute cycles and a flag per warp.

:class:`HeadStatusBatch` mirrors those cached scalars into slot-indexed
numpy arrays so the planner's *reductions* — ready-warp detection,
active/pending counting per op class, and the min over the next
state-changing cycles — run as a handful of vector operations instead
of a Python accumulation per warp.  Rows are refreshed incrementally:
the planner writes a row only when the warp's ``(popped, scoreboard
version)`` stamp moved, exactly the invalidation rule of the scalar
cache, so a warp that sat still since the last plan costs two list
lookups and no array traffic.

The batch is an optional accelerator, not a second source of truth:
:meth:`classify` must return byte-for-byte the same decision the
planner's pure-Python fallback computes, and the fast-forward identity
tests run both paths against the serial core.  When numpy is missing
the planner simply never builds a batch.
"""

from __future__ import annotations

import os
from typing import List, Optional, Tuple

from repro.isa.optypes import OpClass

try:  # pragma: no cover - exercised implicitly by the import outcome
    import numpy as _np
except ImportError:  # pragma: no cover - container always has numpy
    _np = None

#: Environment switch forcing the pure-Python paths everywhere numpy is
#: optional (the planner batch and the dense-step kernel).  Lets a
#: numpy-equipped container prove the no-numpy install behaves — and
#: digests — identically, without actually uninstalling anything.
PURE_PYTHON_ENV = "REPRO_PURE_PYTHON"

#: Stable op-class indexing for the per-row class column.
OP_CLASSES: Tuple[OpClass, ...] = tuple(OpClass)
_OP_INDEX = {cls: i for i, cls in enumerate(OP_CLASSES)}

#: Row states: no cached head (empty buffer / free slot), a fully
#: resolved summary, or a head blocked on an unresolved load.
NO_HEAD, KNOWN, UNRESOLVED = 0, 1, 2


def numpy_available() -> bool:
    """True when the batched scans can be built at all.

    Honours :data:`PURE_PYTHON_ENV`: setting ``REPRO_PURE_PYTHON=1``
    makes a numpy-equipped install behave exactly like one without
    numpy, which is how CI proves the scalar fallbacks are
    decision-identical.
    """
    if os.environ.get(PURE_PYTHON_ENV):
        return False
    return _np is not None


class HeadStatusBatch:
    """Slot-indexed numpy mirror of the per-warp head-status caches."""

    __slots__ = ("n_slots", "ready_at", "mem_until", "status", "op_index",
                 "_stamp_popped", "_stamp_version")

    def __init__(self, n_slots: int) -> None:
        if _np is None:  # pragma: no cover - guarded by callers
            raise RuntimeError("numpy is not available")
        self.n_slots = n_slots
        self.ready_at = _np.zeros(n_slots, dtype=_np.int64)
        self.mem_until = _np.zeros(n_slots, dtype=_np.int64)
        self.status = _np.zeros(n_slots, dtype=_np.int8)
        self.op_index = _np.zeros(n_slots, dtype=_np.int8)
        # Stamps live in plain lists: the staleness probe is a scalar
        # compare per warp per plan, where list indexing beats numpy
        # item access by a wide margin.
        self._stamp_popped = [-1] * n_slots
        self._stamp_version = [-1] * n_slots

    # ------------------------------------------------------------------
    # incremental refresh
    # ------------------------------------------------------------------

    def is_fresh(self, slot: int, popped: int, version: int) -> bool:
        """True when the row already reflects ``(popped, version)``."""
        return (self._stamp_popped[slot] == popped
                and self._stamp_version[slot] == version)

    def update(self, slot: int, popped: int, version: int, ready_at: int,
               mem_until: int, unresolved: bool, op_class: OpClass) -> None:
        """Overwrite one row from a freshly computed head summary."""
        self.ready_at[slot] = ready_at
        self.mem_until[slot] = mem_until
        self.status[slot] = UNRESOLVED if unresolved else KNOWN
        self.op_index[slot] = _OP_INDEX[op_class]
        self._stamp_popped[slot] = popped
        self._stamp_version[slot] = version

    def invalidate(self, slot: int) -> None:
        """Mark a slot as having no cached head (freed / empty buffer).

        Stamp-gated so the planner can call it unconditionally for free
        slots: an already-invalid row costs one list lookup.
        """
        if self._stamp_popped[slot] != -1:
            self.status[slot] = NO_HEAD
            self._stamp_popped[slot] = -1

    # ------------------------------------------------------------------
    # vector reductions
    # ------------------------------------------------------------------

    def classify(self, cycle: int):
        """Classify every cached head at ``cycle`` in one vector pass.

        Returns ``(ready_any, pending, unresolved_any, actv, bound)``:

        * ``ready_any`` — some active head could issue at ``cycle``
          (the caller must then real-step and ignore the rest);
        * ``pending`` — warps in the pending set (unresolved producer or
          inside the memory pending window);
        * ``unresolved_any`` — at least one head waits on an unresolved
          load (the caller must find an LDST completion to bound it);
        * ``actv`` — int array over :data:`OP_CLASSES` of active-set
          occupancy, the frozen ACTV counters for the span;
        * ``bound`` — earliest future cycle at which any head's
          classification can change (``None`` when no head contributes
          a bound), i.e. the scoreboard contribution to the span end.
        """
        status = self.status
        known = status == KNOWN
        unresolved = status == UNRESOLVED
        pending_mem = known & (self.mem_until > cycle)
        active = known & ~pending_mem
        ready_any = bool((self.ready_at[active] <= cycle).any())
        if ready_any:
            return True, 0, False, None, None
        actv = _np.bincount(self.op_index[active],
                            minlength=len(OP_CLASSES))
        pending = int(_np.count_nonzero(pending_mem)
                      + _np.count_nonzero(unresolved))
        bounds = _np.concatenate((self.mem_until[pending_mem],
                                  self.ready_at[active]))
        bound: Optional[int] = int(bounds.min()) if bounds.size else None
        return (False, pending, bool(unresolved.any()), actv, bound)


class WarpStateBlock(HeadStatusBatch):
    """Full per-slot SoA state block for the dense-step kernel.

    Extends the planner's head-status mirror with the extra per-slot
    columns the dense kernel's classify stage consumes every cycle:
    the head instruction's age (for candidate construction) and its
    destination register (for issue bookkeeping without touching the
    instruction object on the hot path).  Rows follow the same
    ``(popped, scoreboard version)`` stamp discipline as the base
    class, so the kernel's incremental-sync rules are identical to the
    planner's.
    """

    __slots__ = ("age", "head_dest")

    def __init__(self, n_slots: int) -> None:
        super().__init__(n_slots)
        self.age = _np.zeros(n_slots, dtype=_np.int64)
        self.head_dest = _np.full(n_slots, -1, dtype=_np.int32)

    def update_row(self, slot: int, popped: int, version: int,
                   ready_at: int, mem_until: int, unresolved: bool,
                   op_class: OpClass, age: int, dest: int) -> None:
        """Overwrite one row including the dense-kernel columns."""
        self.update(slot, popped, version, ready_at, mem_until,
                    unresolved, op_class)
        self.age[slot] = age
        self.head_dest[slot] = dest

    def dense_classify(self, cycle: int, want_active: bool = False):
        """Per-cycle classification for the dense kernel.

        Unlike :meth:`classify` (which exists to *prove* no warp is
        ready), the dense kernel needs the full picture every cycle:

        Returns ``(n_active, n_pending, actv, ready, active_slots)``:

        * ``n_active`` / ``n_pending`` — active / pending warp counts
          (plain ints, digest-safe);
        * ``actv`` — active-set occupancy per :data:`OP_CLASSES` as a
          plain list of ints;
        * ``ready`` — int64 array of ready slots in ascending slot
          order, or ``None`` when no head can issue at ``cycle``;
        * ``active_slots`` — ascending list of active slots when
          ``want_active`` (schedulers that need all candidates), else
          ``None``.
        """
        status = self.status
        known = status == KNOWN
        pending_mem = known & (self.mem_until > cycle)
        active = known & ~pending_mem
        n_active = int(_np.count_nonzero(active))
        n_heads = int(_np.count_nonzero(status))
        actv: List[int] = _np.bincount(
            self.op_index[active], minlength=len(OP_CLASSES)).tolist()
        ready_mask = active & (self.ready_at <= cycle)
        ready = _np.flatnonzero(ready_mask) if ready_mask.any() else None
        active_slots = (_np.flatnonzero(active).tolist()
                        if want_active else None)
        return n_active, n_heads - n_active, actv, ready, active_slots


__all__ = ["HeadStatusBatch", "WarpStateBlock", "NO_HEAD", "KNOWN",
           "UNRESOLVED", "OP_CLASSES", "PURE_PYTHON_ENV",
           "numpy_available"]
