"""Scheduler interface between the SM issue stage and warp schedulers.

Each cycle the SM builds the *active set* — one :class:`IssueCandidate`
per warp whose head instruction is not blocked on a long-latency memory
event — plus a :class:`SchedulerView` carrying the aggregate counters the
paper's issue logic keeps in hardware (INT_ACTV/FP_ACTV, per-type RDY
counters, per-type blackout status).  The scheduler returns the *ready*
candidates in issue-priority order; the SM walks that order, skipping
candidates whose unit has a structural or power-gating hazard, until the
issue width is filled.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass, field
from typing import Dict, List, Sequence

from repro.isa.instructions import Instruction
from repro.isa.optypes import OpClass
from repro.obs.bus import NULL_BUS, EventBus


@dataclass(frozen=True)
class IssueCandidate:
    """One active-set entry as seen by the issue stage.

    Attributes:
        slot: Resident warp slot index.
        age: Monotonic launch sequence number of the warp (lower = older);
            schedulers use it for oldest-first tie-breaking.
        inst: The warp's head instruction.
        ready: Scoreboard-clean bit (the paper's R bit).
    """

    slot: int
    age: int
    inst: Instruction
    ready: bool

    @property
    def op_class(self) -> OpClass:
        """Instruction type of the warp's head (the two-bit field)."""
        return self.inst.op_class


@dataclass
class SchedulerView:
    """Aggregate per-cycle state exposed to schedulers.

    Attributes:
        actv_counts: Active-set occupancy per instruction type — the
            hardware INT_ACTV / FP_ACTV counters (kept for all four
            types here; GATES only consults INT and FP).
        rdy_counts: Ready instructions per type (INT_RDY, FP_RDY, ...).
        type_in_blackout: For each CUDA-core type, True when *every*
            cluster of that type is in un-wakeable blackout; GATES'
            extended priority switch consults this (section 5).
    """

    actv_counts: Dict[OpClass, int] = field(
        default_factory=lambda: {cls: 0 for cls in OpClass})
    rdy_counts: Dict[OpClass, int] = field(
        default_factory=lambda: {cls: 0 for cls in OpClass})
    type_in_blackout: Dict[OpClass, bool] = field(
        default_factory=lambda: {cls: False for cls in OpClass})


def rotated_ready(candidates: Sequence[IssueCandidate], start: int,
                  n_slots: int) -> List[IssueCandidate]:
    """Ready candidates in rotated slot order, scan starting at ``start``.

    Semantically identical to the pattern every built-in scheduler used
    to spell out inline::

        ready = [c for c in candidates if c.ready]
        ready.sort(key=lambda c: (c.slot - start) % n_slots)

    but O(n) on the hot path: the SM hands schedulers candidates in
    ascending slot order with unique slots, so the modulo-key sort is
    exactly a rotation — the block of slots ``>= start`` first, then the
    wrap-around block below ``start``, each keeping its relative order.
    Inputs that are not slot-ascending (hand-built fixtures in tests)
    are detected by the same single pass and fall back to the stable
    sort, so the helper is a drop-in for arbitrary candidate lists.
    """
    ready = [c for c in candidates if c.ready]
    if len(ready) < 2:
        return ready
    prev = ready[0].slot
    for cand in ready[1:]:
        slot = cand.slot
        if slot <= prev:
            ready.sort(key=lambda c: (c.slot - start) % n_slots)
            return ready
        prev = slot
    if start <= ready[0].slot or start > prev:
        return ready
    for i, cand in enumerate(ready):
        if cand.slot >= start:
            return ready[i:] + ready[:i]
    return ready  # unreachable: some slot >= start exists


class WarpScheduler(abc.ABC):
    """A warp-issue priority policy."""

    #: Display name used in experiment records.
    name = "abstract"

    #: Whether :meth:`order` must see the *full* active set, stalled
    #: candidates included.  Schedulers that begin by filtering on
    #: ``c.ready`` (all the built-in round-robin family) set this False,
    #: which lets the SM skip materialising stalled-candidate objects on
    #: the per-cycle path; CCWS keeps the default because its throttle
    #: cutoff depends on ``len(candidates)``.
    needs_all_candidates = True

    #: Observability bus.  The SM rebinds this to its own bus at
    #: construction; the class-level default keeps standalone scheduler
    #: instances (unit tests) publishing into the shared disabled bus.
    bus: EventBus = NULL_BUS

    #: Whether the idle fast-forward (:mod:`repro.sim.fastforward`) may
    #: skip cycles on which this scheduler sees no ready candidates.  A
    #: scheduler must opt in only when (a) ``order`` on an empty ready
    #: set either mutates no state or the mutation is replayed exactly
    #: by :meth:`skip_idle_cycles`, and (b) any priority change that can
    #: fire on a no-ready cycle is reported by :meth:`idle_flip_pending`.
    supports_idle_skip = False

    #: Native ordering mode for the dense-step kernel
    #: (:mod:`repro.sim.kernel`), or None to have the kernel build the
    #: scalar candidate list and call :meth:`order` every cycle (always
    #: correct, just slower).  A scheduler may declare one of the
    #: built-in modes only when its ``order`` is *exactly* that
    #: behaviour: ``"rotate_after_last"`` (rotated ready scan starting
    #: after the last issuer), ``"rotate_every_cycle"`` (classic LRR —
    #: the pointer advances every ``order`` call, ready or not), or
    #: ``"gates"`` (the GATES rank-bucket rotation including its
    #: per-cycle ``_update_priority``).  The golden identity harness
    #: pins kernel-forced runs against the scalar path, so a wrong
    #: declaration fails loudly.
    dense_order_mode: "str | None" = None

    @abc.abstractmethod
    def order(self, cycle: int, candidates: Sequence[IssueCandidate],
              view: SchedulerView) -> List[IssueCandidate]:
        """Return the ready candidates in descending issue priority."""

    def on_issue(self, cycle: int, candidate: IssueCandidate) -> None:
        """Callback after ``candidate`` actually issued (optional)."""

    def reset(self) -> None:
        """Clear internal state before a fresh run (optional)."""

    def skip_idle_cycles(self, span: int) -> None:
        """Replay the per-cycle state drift of ``span`` no-ready cycles.

        Called by the fast-forward path instead of ``span`` individual
        ``order`` calls with an empty ready set.  Default: nothing (the
        scheduler's ``order`` is pure on empty input).
        """

    def idle_flip_pending(self, cycle: int, view: SchedulerView) -> bool:
        """True when the scheduler would change internal priority state
        at ``cycle`` even with no ready candidates, given ``view``.

        The fast-forward planner real-steps such cycles so the change
        happens inside an ordinary ``order`` call.  Default: False.
        """
        return False
