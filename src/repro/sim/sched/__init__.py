"""Warp schedulers for the SM issue stage.

* :mod:`repro.sim.sched.base` -- the scheduler interface and the
  per-cycle view (candidates, ACTV/RDY counters, blackout status).
* :mod:`repro.sim.sched.two_level` -- the baseline Two-level scheduler
  (Gebhart et al. [12]) the paper builds on, plus a single-level loose
  round-robin scheduler for ablations.

The gating-aware scheduler (GATES) is part of the paper's contribution
and lives in :mod:`repro.core.gates`.
"""

from repro.sim.sched.base import IssueCandidate, SchedulerView, WarpScheduler
from repro.sim.sched.two_level import TwoLevelScheduler, LooseRoundRobinScheduler
from repro.sim.sched.fetch_group import FetchGroupScheduler
from repro.sim.sched.ccws import CCWSScheduler

__all__ = [
    "IssueCandidate",
    "SchedulerView",
    "WarpScheduler",
    "TwoLevelScheduler",
    "LooseRoundRobinScheduler",
    "FetchGroupScheduler",
    "CCWSScheduler",
]
