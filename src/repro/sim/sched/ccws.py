"""Cache-conscious warp scheduler (CCWS, Rogers et al., MICRO-45).

A related-work baseline from the paper's section 8: when the lost-
locality monitor reports that warps are evicting each other's working
sets, the scheduler throttles multithreading — only the oldest few
warps keep issue privileges until the aggregate score decays, giving
each survivor enough cache to stop thrashing.

This is a simplification of Rogers' point system (per-warp scores
there gate individual warps; here the aggregate score shrinks the
issuable-warp window), sufficient to reproduce the behavioural contrast
with GATES: CCWS clusters *cache footprints*, GATES clusters
*instruction types* — only the latter lengthens per-unit idle windows.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from repro.sim.locality import LostLocalityMonitor
from repro.sim.sched.base import (IssueCandidate, SchedulerView,
                                  WarpScheduler, rotated_ready)


class CCWSScheduler(WarpScheduler):
    """Two-level scheduling with lost-locality warp throttling."""

    name = "ccws"
    # With an empty ready set, ``order`` mutates nothing (the throttle
    # counter only advances when ready warps are filtered out).  The
    # decay hook below still pins every cycle via idle_next_event, so
    # CCWS runs effectively un-fast-forwarded — correct, just not fast.
    supports_idle_skip = True

    def __init__(self, n_slots: int = 48,
                 monitor: Optional[LostLocalityMonitor] = None,
                 score_per_excluded_warp: float = 64.0,
                 min_active_warps: int = 2) -> None:
        if n_slots < 1:
            raise ValueError("n_slots must be >= 1")
        if score_per_excluded_warp <= 0:
            raise ValueError("score_per_excluded_warp must be positive")
        if min_active_warps < 1:
            raise ValueError("min_active_warps must be >= 1")
        self.n_slots = n_slots
        self.monitor = monitor or LostLocalityMonitor()
        self.score_per_excluded_warp = score_per_excluded_warp
        self.min_active_warps = min_active_warps
        self._last_slot = n_slots - 1
        self.throttled_cycles = 0

    def allowed_warps(self, n_candidates: int) -> int:
        """How many (oldest) warps may issue given the current score."""
        excluded = int(self.monitor.total_score()
                       / self.score_per_excluded_warp)
        return max(self.min_active_warps, n_candidates - excluded)

    def order(self, cycle: int, candidates: Sequence[IssueCandidate],
              view: SchedulerView) -> List[IssueCandidate]:
        ready = [c for c in candidates if c.ready]
        allowed = self.allowed_warps(len(candidates))
        if allowed < len(candidates):
            # Issue privileges go to the oldest warps (they own the
            # victim-tagged working sets worth protecting).
            privileged = {c.slot for c in
                          sorted(candidates, key=lambda c: c.age)[:allowed]}
            filtered = [c for c in ready if c.slot in privileged]
            if len(filtered) < len(ready):
                self.throttled_cycles += 1
            ready = filtered
        start = (self._last_slot + 1) % self.n_slots
        return rotated_ready(ready, start, self.n_slots)

    def on_issue(self, cycle: int, candidate: IssueCandidate) -> None:
        self._last_slot = candidate.slot

    def reset(self) -> None:
        self._last_slot = self.n_slots - 1
        self.throttled_cycles = 0


class MonitorDecayHook:
    """Cycle hook that drives the monitor's score decay."""

    def __init__(self, monitor: LostLocalityMonitor) -> None:
        self.monitor = monitor

    def on_cycle(self, cycle: int) -> None:
        self.monitor.on_cycle(cycle)

    def idle_next_event(self, cycle: int) -> int:
        # The monitor's score decays every cycle; there is no cheap way
        # to replay that in bulk, so report "something happens now",
        # which blocks any skip while this hook is installed.
        return cycle
