"""Baseline warp schedulers.

:class:`TwoLevelScheduler` is the paper's baseline (Gebhart et al. [12]):
warps blocked on long-latency events live in a pending set (the SM
excludes them from the candidates), and the scheduler greedily issues
ready warps from the active set *without regard to instruction type* —
the behaviour section 3.1 blames for interspersing INT and FP
instructions and chopping idle windows into useless slivers.

Greedy selection is modelled as a loose round-robin over warp slots
starting just after the last slot that issued, which is how the
interleaving arises in GPGPU-Sim's two-level configuration.

:class:`LooseRoundRobinScheduler` is a single-level round-robin over all
warps, kept as an ablation reference (pre-two-level GPU schedulers).
"""

from __future__ import annotations

from typing import List, Sequence

from repro.sim.sched.base import (IssueCandidate, SchedulerView,
                                  WarpScheduler, rotated_ready)


class TwoLevelScheduler(WarpScheduler):
    """Greedy two-level warp scheduler (paper baseline)."""

    name = "two_level"
    # ``order`` mutates nothing (only ``on_issue`` moves the pointer),
    # so skipping no-ready cycles is trivially safe.
    supports_idle_skip = True
    # ``order`` filters on the ready bit immediately; stalled
    # candidates never influence the result.
    needs_all_candidates = False
    # ``order`` is exactly the rotated ready scan from the last issuer.
    dense_order_mode = "rotate_after_last"

    def __init__(self, n_slots: int = 48) -> None:
        if n_slots < 1:
            raise ValueError("n_slots must be >= 1")
        self.n_slots = n_slots
        self._last_slot = n_slots - 1

    def order(self, cycle: int, candidates: Sequence[IssueCandidate],
              view: SchedulerView) -> List[IssueCandidate]:
        # Rotate slot order so the scan begins after the last issuer;
        # type plays no role -- that is precisely the baseline's flaw.
        start = (self._last_slot + 1) % self.n_slots
        return rotated_ready(candidates, start, self.n_slots)

    def on_issue(self, cycle: int, candidate: IssueCandidate) -> None:
        self._last_slot = candidate.slot

    def reset(self) -> None:
        self._last_slot = self.n_slots - 1


class LooseRoundRobinScheduler(WarpScheduler):
    """Single-level loose round-robin (ablation baseline).

    Identical candidate treatment to :class:`TwoLevelScheduler` except
    the rotation pointer advances every cycle rather than following the
    last issuer, approximating classic LRR fairness.
    """

    name = "lrr"
    # ``order`` advances the rotation pointer every cycle; the skip
    # override below replays exactly that drift.
    supports_idle_skip = True
    needs_all_candidates = False
    # The dense kernel replays the same every-cycle pointer advance.
    dense_order_mode = "rotate_every_cycle"

    def __init__(self, n_slots: int = 48) -> None:
        if n_slots < 1:
            raise ValueError("n_slots must be >= 1")
        self.n_slots = n_slots
        self._pointer = 0

    def skip_idle_cycles(self, span: int) -> None:
        self._pointer = (self._pointer + span) % self.n_slots

    def order(self, cycle: int, candidates: Sequence[IssueCandidate],
              view: SchedulerView) -> List[IssueCandidate]:
        start = self._pointer
        self._pointer = (start + 1) % self.n_slots
        return rotated_ready(candidates, start, self.n_slots)

    def reset(self) -> None:
        self._pointer = 0
