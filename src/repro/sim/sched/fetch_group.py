"""Fetch-group two-level scheduler (Narasiman et al., MICRO-44).

A related-work baseline the paper discusses in section 8: warps are
partitioned into *fetch groups*; the scheduler prioritises one group
until its warps stall on long-latency events, then rotates to the next.
The goal there was latency hiding (staggering memory bursts between
groups), not power; we include it as an ablation reference so the
reproduction can show GATES' effect is about *type* clustering, not
just any clustering.
"""

from __future__ import annotations

from typing import List, Sequence

from repro.sim.sched.base import (IssueCandidate, SchedulerView,
                                  WarpScheduler, rotated_ready)


class FetchGroupScheduler(WarpScheduler):
    """Group-prioritised two-level warp scheduler."""

    name = "fetch_group"
    # ``order`` returns before any mutation when the ready set is
    # empty, so no-ready cycles leave the scheduler untouched.
    supports_idle_skip = True
    needs_all_candidates = False

    def __init__(self, n_slots: int = 48, group_size: int = 8) -> None:
        if n_slots < 1:
            raise ValueError("n_slots must be >= 1")
        if group_size < 1:
            raise ValueError("group_size must be >= 1")
        self.n_slots = n_slots
        self.group_size = group_size
        self.n_groups = (n_slots + group_size - 1) // group_size
        self._current_group = 0
        self._last_slot = n_slots - 1
        self.group_rotations = 0

    def _group_of(self, slot: int) -> int:
        return slot // self.group_size

    def order(self, cycle: int, candidates: Sequence[IssueCandidate],
              view: SchedulerView) -> List[IssueCandidate]:
        ready = [c for c in candidates if c.ready]
        if not ready:
            return []
        # Rotate away from a drained group: if the current group has no
        # ready warp, move to the next group that does (the Narasiman
        # "fetch group switch on long-latency stall" heuristic, observed
        # through readiness).
        groups_with_ready = {self._group_of(c.slot) for c in ready}
        if self._current_group not in groups_with_ready:
            for offset in range(1, self.n_groups + 1):
                group = (self._current_group + offset) % self.n_groups
                if group in groups_with_ready:
                    self._current_group = group
                    self.group_rotations += 1
                    break
        start = (self._last_slot + 1) % self.n_slots
        current = self._current_group
        # Rotated-slot order first, then a stable sort on the group key
        # alone — equivalent to the old composite (group, slot) key.
        ready = rotated_ready(ready, start, self.n_slots)
        ready.sort(key=lambda c: (self._group_of(c.slot) - current)
                   % self.n_groups)
        return ready

    def on_issue(self, cycle: int, candidate: IssueCandidate) -> None:
        self._last_slot = candidate.slot

    def reset(self) -> None:
        self._current_group = 0
        self._last_slot = self.n_slots - 1
        self.group_rotations = 0
