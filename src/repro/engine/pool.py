"""Process-pool fan-out with deterministic, submission-order collection.

:class:`ParallelEngine` is the one object the harness and CLI touch: it
owns the worker pool (created lazily, reused across batches), the cache
location, and the fast-forward default for the jobs it runs.  Results
are collected in submission order — worker scheduling cannot reorder
the aggregate — and each simulation is itself a deterministic function
of its job spec, so a ``--jobs 4`` run is bit-identical to ``--jobs 1``.
"""

from __future__ import annotations

from concurrent.futures import ProcessPoolExecutor
from functools import partial
from typing import Callable, List, Optional, Sequence, TypeVar

from repro.engine.cache import DEFAULT_CACHE_DIR, RunCache
from repro.engine.jobs import JobOutcome, SimJob, execute_job

T = TypeVar("T")
R = TypeVar("R")


class ParallelEngine:
    """Fans picklable jobs over a process pool; inline when jobs <= 1.

    Args:
        jobs: Worker process count.  1 (default) executes inline in the
            calling process — same code path, no pool, no pickling.
        cache_dir: Result/trace cache root, or None to disable caching.
            Workers open their own :class:`RunCache` on this path (the
            cache is just a directory of immutable files, so no
            cross-process coordination is needed).
        fast_forward: Whether jobs built by this engine's helpers run
            with the idle-cycle fast-forward (bit-identical either way).
    """

    def __init__(self, jobs: int = 1,
                 cache_dir: Optional[str] = DEFAULT_CACHE_DIR,
                 fast_forward: bool = True) -> None:
        if jobs < 1:
            raise ValueError("jobs must be >= 1")
        self.jobs = jobs
        self.cache_dir = cache_dir
        self.fast_forward = fast_forward
        self._executor: Optional[ProcessPoolExecutor] = None

    # ------------------------------------------------------------------
    # generic mapping
    # ------------------------------------------------------------------

    def map(self, fn: Callable[[T], R], items: Sequence[T]) -> List[R]:
        """Apply ``fn`` to every item, results in submission order.

        ``fn`` must be picklable (a top-level function or a ``partial``
        of one) when ``jobs > 1``.  Single-item batches and single-job
        engines run inline — no pool spin-up for the common case.
        """
        items = list(items)
        if self.jobs <= 1 or len(items) <= 1:
            return [fn(item) for item in items]
        pool = self._pool()
        futures = [pool.submit(fn, item) for item in items]
        return [future.result() for future in futures]

    def _pool(self) -> ProcessPoolExecutor:
        if self._executor is None:
            self._executor = ProcessPoolExecutor(max_workers=self.jobs)
        return self._executor

    # ------------------------------------------------------------------
    # simulation jobs
    # ------------------------------------------------------------------

    def run_sim_jobs(self, jobs: Sequence[SimJob]) -> List[JobOutcome]:
        """Execute a batch of grid cells (cache-aware, order-preserving)."""
        return self.map(partial(execute_job, cache_dir=self.cache_dir),
                        jobs)

    def run_sim_job(self, job: SimJob) -> JobOutcome:
        """Execute one grid cell inline (still cache-aware)."""
        return execute_job(job, cache_dir=self.cache_dir)

    def open_cache(self) -> Optional[RunCache]:
        """A cache handle on this engine's directory (None if disabled)."""
        return RunCache(self.cache_dir) if self.cache_dir else None

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------

    def close(self) -> None:
        """Shut the worker pool down (idempotent)."""
        if self._executor is not None:
            self._executor.shutdown()
            self._executor = None

    def __enter__(self) -> "ParallelEngine":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def __del__(self) -> None:  # pragma: no cover - interpreter teardown
        try:
            self.close()
        except Exception:
            pass

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (f"ParallelEngine(jobs={self.jobs}, "
                f"cache_dir={self.cache_dir!r}, "
                f"fast_forward={self.fast_forward})")
