"""Process-pool fan-out with deterministic, submission-order collection.

:class:`ParallelEngine` is the one object the harness and CLI touch: it
owns the worker pool (created lazily, reused across batches, rebuilt
when a worker kills it), the cache location, the fast-forward default
and the :class:`~repro.engine.faults.FaultPolicy` for the jobs it runs.
Results are collected in submission order — worker scheduling cannot
reorder the aggregate — and each simulation is itself a deterministic
function of its job spec, so a ``--jobs 4`` run is bit-identical to
``--jobs 1`` and a retried job is bit-identical to a first-try job.

Fault tolerance (:meth:`ParallelEngine.map_outcomes`):

* a worker exception marks *that job* ``failed`` (with its traceback)
  and the rest of the batch completes;
* a per-job timeout kills the hung worker's pool, rebuilds it, and
  resubmits the unfinished tail — each job's budget is anchored to
  the moment it is observed executing, never to wave submission, so
  only jobs that actually ran past the budget are charged and a job
  queued behind a busy pool is never taxed for its siblings' time;
* a hard worker death (``BrokenProcessPool``) also rebuilds the pool
  and resubmits the tail; because a crash cannot be attributed while
  several jobs share the pool, the engine switches to one-job waves
  until the culprit crashes alone and is charged (or every suspect
  has been exonerated by a clean solo run), then resumes parallel
  waves — one crash never serialises the rest of a large sweep;
* failed and timed-out jobs are retried up to
  ``FaultPolicy.max_retries`` times with bounded exponential backoff.

:meth:`ParallelEngine.map` keeps the strict raise-on-error contract for
callers that want it, but no longer strands siblings: pending futures
are cancelled and still-running ones awaited before the first error
(in submission order) is re-raised.
"""

from __future__ import annotations

import time
import traceback
from concurrent.futures import (
    CancelledError,
    Future,
    ProcessPoolExecutor,
    wait,
)
from concurrent.futures import TimeoutError as FutureTimeoutError
from concurrent.futures.process import BrokenProcessPool
from functools import partial
from pathlib import Path
from typing import (
    Callable,
    Dict,
    FrozenSet,
    List,
    Optional,
    Sequence,
    Set,
    Tuple,
    TypeVar,
    Union,
)

from repro.engine.cache import DEFAULT_CACHE_DIR, RunCache
from repro.engine.faults import (
    FaultPolicy,
    JobReport,
    JobStatus,
    last_error_line,
)
from repro.engine.jobs import (
    JobOutcome,
    SimJob,
    execute_job,
    outcome_from_report,
)
from repro.obs.ledger import LedgerWriter, ledger_dir_for, new_run_id
from repro.obs.telemetry import (
    EngineTelemetry,
    JobFinished,
    JobQueued,
    JobRetry,
    PoolRebuilt,
    inline_worker,
    job_label,
)

T = TypeVar("T")
R = TypeVar("R")

#: Poll interval (seconds) while watching a wave for per-job timeout
#: expiry; a job's effective budget is ``job_timeout`` plus at most one
#: poll of slack.
_TIMEOUT_POLL = 0.05


def _format_error(exc: BaseException) -> str:
    return "".join(traceback.format_exception(type(exc), exc,
                                              exc.__traceback__))


def _ledger_record(index: int, job: SimJob,
                   outcome: JobOutcome) -> Dict[str, object]:
    """One run-ledger job line, derived from the settled outcome."""
    manifest = outcome.manifest
    try:
        spec_hash = job.spec.spec_hash()
    except Exception:  # unresolvable spec; the status already says so
        spec_hash = ""
    return dict(
        index=index,
        benchmark=manifest.benchmark,
        technique=manifest.technique,
        spec_hash=spec_hash,
        seed=manifest.seed,
        scale=manifest.scale,
        status=outcome.status.value,
        attempts=outcome.attempts,
        worker=manifest.worker,
        cache_hit=manifest.cache_hit,
        cycles=manifest.cycles,
        instructions=manifest.instructions,
        wall_seconds=round(manifest.total_seconds, 6),
        error=last_error_line(outcome.error),
    )


class ParallelEngine:
    """Fans picklable jobs over a process pool; inline when jobs <= 1.

    Args:
        jobs: Worker process count.  1 (default) executes inline in the
            calling process — same code path, no pool, no pickling.
        cache_dir: Result/trace cache root, or None to disable caching.
            Workers open their own :class:`RunCache` on this path (the
            cache is just a directory of immutable files, so no
            cross-process coordination is needed).
        fast_forward: Whether jobs built by this engine's helpers run
            with the idle-cycle fast-forward (bit-identical either way).
        policy: Default :class:`FaultPolicy` for batches run through
            this engine (no retries, no timeout unless configured).
        cache_max_bytes: Optional size cap for the persistent cache;
            workers evict least-recently-used entries past it.
        telemetry: Optional :class:`~repro.obs.telemetry
            .EngineTelemetry` — when given (and its bus is enabled),
            the engine publishes job/cache/pool events onto its bus,
            workers relay digested sim events back to it, and worker
            profiling dumps go to its ``profile_dir``.  None (default)
            keeps every hook a single ``is None`` check.
        ledger: ``True`` (default) writes one run-ledger JSONL per
            :meth:`run_sim_jobs` batch under ``<cache_dir>/ledger/``
            (silently off without a cache dir); a path writes ledgers
            there instead; ``False`` disables them.
    """

    def __init__(self, jobs: int = 1,
                 cache_dir: Optional[str] = DEFAULT_CACHE_DIR,
                 fast_forward: bool = True,
                 policy: Optional[FaultPolicy] = None,
                 cache_max_bytes: Optional[int] = None,
                 telemetry: Optional[EngineTelemetry] = None,
                 ledger: Union[bool, str, Path] = True) -> None:
        if jobs < 1:
            raise ValueError("jobs must be >= 1")
        self.jobs = jobs
        self.cache_dir = cache_dir
        self.fast_forward = fast_forward
        self.policy = policy if policy is not None else FaultPolicy()
        self.cache_max_bytes = cache_max_bytes
        self.telemetry = telemetry
        self.ledger = ledger
        #: Extra key/values merged into the next ledger's ``end``
        #: record (e.g. the ``--profile`` report path).
        self.ledger_meta: Dict[str, object] = {}
        #: Run id of the most recent :meth:`run_sim_jobs` ledger.
        self.last_run_id: Optional[str] = None
        self._executor: Optional[ProcessPoolExecutor] = None
        self._cache_swept = False
        #: Per-batch state: the active telemetry (None when disabled)
        #: and the submission-order labels of the current batch.
        self._tel: Optional[EngineTelemetry] = None
        self._labels: List[str] = []

    # ------------------------------------------------------------------
    # generic mapping
    # ------------------------------------------------------------------

    def map(self, fn: Callable[[T], R], items: Sequence[T]) -> List[R]:
        """Apply ``fn`` to every item, results in submission order.

        The strict path: the first failure (in submission order) is
        re-raised after the rest of the batch has been cancelled or
        awaited — no future is left running detached.  Honours the
        engine's retry/timeout policy; ``fn`` must be picklable (a
        top-level function or a ``partial`` of one) when ``jobs > 1``.
        """
        reports = self.map_outcomes(
            fn, items,
            policy=FaultPolicy(max_retries=self.policy.max_retries,
                               job_timeout=self.policy.job_timeout,
                               backoff_base=self.policy.backoff_base,
                               backoff_cap=self.policy.backoff_cap,
                               fail_fast=True))
        for report in reports:
            if report.status in (JobStatus.FAILED, JobStatus.TIMED_OUT):
                raise report.to_exception()
        return [report.value for report in reports]

    def map_outcomes(self, fn: Callable[[T], R], items: Sequence[T],
                     policy: Optional[FaultPolicy] = None,
                     ) -> List[JobReport]:
        """Apply ``fn`` to every item, returning structured outcomes.

        Never raises out of the middle of a batch: every item gets a
        :class:`JobReport` in submission order, ``ok`` or not.  Worker
        exceptions, hung workers (``policy.job_timeout``) and hard
        worker deaths are contained to the jobs they hit; everything
        else completes.  Retries re-execute the same pure function, so
        a retried result is bit-identical to a first-try result.
        """
        policy = policy if policy is not None else self.policy
        items = list(items)
        if not items:
            return []
        self._begin_batch(items)
        try:
            pooled = self.jobs > 1 and (len(items) > 1
                                        or policy.job_timeout is not None)
            if not pooled:
                if self.telemetry is not None:
                    with inline_worker(self.telemetry):
                        return self._inline_outcomes(fn, items, policy)
                return self._inline_outcomes(fn, items, policy)
            reports = self._pooled_outcomes(fn, items, policy)
            if self._tel is not None:
                # Workers wrote their records before returning, so one
                # drain publishes everything this batch produced.
                self._tel.flush()
            return reports
        finally:
            self._tel = None
            self._labels = []

    def _begin_batch(self, items: Sequence) -> None:
        """Arm per-batch telemetry state and announce the queue."""
        telemetry = self.telemetry
        self._tel = telemetry if (telemetry is not None
                                  and telemetry.enabled) else None
        if self._tel is None:
            self._labels = []
            return
        self._labels = [job_label(item, i)
                        for i, item in enumerate(items)]
        for index, item in enumerate(items):
            try:
                spec = getattr(item, "spec", None)
                spec_hash = spec.spec_hash() if spec is not None \
                    and hasattr(spec, "spec_hash") else ""
            except Exception:  # unresolvable spec: the job will fail
                spec_hash = ""  # on execution; don't die announcing it

            self._tel.emit(JobQueued.now(label=self._labels[index],
                                         index=index,
                                         spec_hash=spec_hash))

    def _emit_retry(self, index: int, attempt: int, reason: str) -> None:
        if self._tel is not None:
            self._tel.emit(JobRetry.now(label=self._labels[index],
                                        index=index, attempt=attempt,
                                        reason=reason))

    def _emit_finished(self, index: int, status: str, attempts: int,
                       value: object = None) -> None:
        if self._tel is None:
            return
        manifest = getattr(value, "manifest", None)
        self._tel.emit(JobFinished.now(
            label=self._labels[index], index=index, status=status,
            attempts=attempts,
            seconds=manifest.total_seconds if manifest is not None
            else 0.0,
            cache_hit=bool(getattr(manifest, "cache_hit", False)),
            worker=str(getattr(manifest, "worker", ""))))

    # ------------------------------------------------------------------
    # inline execution (jobs == 1, or single-item batches)
    # ------------------------------------------------------------------

    def _inline_outcomes(self, fn: Callable[[T], R], items: Sequence[T],
                         policy: FaultPolicy) -> List[JobReport]:
        """In-process path: retries apply, timeouts cannot preempt."""
        reports: List[JobReport] = []
        aborted = False
        for index, item in enumerate(items):
            if aborted:
                reports.append(JobReport(
                    index=index, status=JobStatus.CANCELLED,
                    error="cancelled by fail-fast", attempts=0))
                self._emit_finished(index, "cancelled", 0)
                continue
            failures = 0
            while True:
                try:
                    value = fn(item)
                except Exception as exc:
                    failures += 1
                    if failures <= policy.max_retries:
                        self._emit_retry(index, failures, "failed")
                        time.sleep(policy.backoff(failures))
                        continue
                    reports.append(JobReport(
                        index=index, status=JobStatus.FAILED,
                        error=_format_error(exc), attempts=failures,
                        exception=exc))
                    self._emit_finished(index, "failed", failures)
                    aborted = policy.fail_fast
                else:
                    reports.append(JobReport(
                        index=index, status=JobStatus.OK, value=value,
                        attempts=failures + 1))
                    self._emit_finished(index, "ok", failures + 1,
                                        value)
                break
        return reports

    # ------------------------------------------------------------------
    # pooled execution
    # ------------------------------------------------------------------

    def _pooled_outcomes(self, fn: Callable[[T], R], items: Sequence[T],
                         policy: FaultPolicy) -> List[JobReport]:
        """Wave executor: submit pending jobs, settle each in order.

        ``pending`` holds ``(index, failures_so_far)`` pairs.  A wave
        is normally the whole pending list; after an unattributable
        pool break it shrinks to one job so the next break names its
        culprit, and widens back out the moment the culprit is charged
        (or every suspect has run alone).  Jobs resubmitted because
        *another* job broke the pool keep their failure count —
        recovery never taxes the innocent.
        """
        reports: List[Optional[JobReport]] = [None] * len(items)
        pending: List[Tuple[int, int]] = [(i, 0) for i in range(len(items))]
        serialize = False
        suspects: Set[int] = set()
        while pending:
            if serialize:
                wave, pending = pending[:1], pending[1:]
            else:
                wave, pending = pending, []
            retry_round = max((fails for _, fails in wave), default=0)
            if retry_round:
                time.sleep(policy.backoff(retry_round))
            pool = self._pool()
            submitted = [(index, fails, pool.submit(fn, items[index]))
                         for index, fails in wave]
            expired = self._drive_wave([f for _, _, f in submitted],
                                       policy)
            broke = bool(expired)
            crash_break = False
            crashed_alone = False
            aborted = False
            leftovers: List[Future] = []
            for index, fails, future in submitted:
                if aborted:
                    if not future.cancel() and not future.done():
                        leftovers.append(future)
                    reports[index] = JobReport(
                        index=index, status=JobStatus.CANCELLED,
                        error="cancelled by fail-fast", attempts=fails)
                    self._emit_finished(index, "cancelled", fails)
                    continue
                if future in expired:
                    # Ran past its own budget (anchored to when it was
                    # observed executing, not to wave submission).
                    aborted = self._settle_timeout(reports, pending,
                                                   index, fails + 1,
                                                   policy)
                    continue
                if broke:
                    # The pool died in this wave: salvage results that
                    # finished before the break, resubmit the rest
                    # with their failure counts untouched.
                    salvage = self._salvage(reports, pending, index,
                                            fails, future, policy)
                    aborted = salvage and policy.fail_fast
                    continue
                try:
                    value = future.result()
                except BrokenProcessPool as exc:
                    self._teardown_pool(kill=True)
                    if self._tel is not None:
                        self._tel.emit(PoolRebuilt.now(reason="crash"))
                    broke = True
                    crash_break = True
                    if len(wave) == 1:
                        # Alone in the pool: the crash is this job's.
                        crashed_alone = True
                        aborted = self._settle_failure(
                            reports, pending, index, fails + 1, exc,
                            policy)
                    else:
                        # Cannot tell which job killed the pool —
                        # resubmit uncharged; isolation is decided at
                        # the end of the wave.
                        pending.append((index, fails))
                        self._emit_retry(index, fails, "pool_broken")
                except CancelledError:
                    pending.append((index, fails))
                except Exception as exc:
                    aborted = self._settle_failure(reports, pending,
                                                   index, fails + 1,
                                                   exc, policy)
                else:
                    reports[index] = JobReport(
                        index=index, status=JobStatus.OK, value=value,
                        attempts=fails + 1)
                    self._emit_finished(index, "ok", fails + 1, value)
            if aborted:
                for index, fails in pending:
                    reports[index] = JobReport(
                        index=index, status=JobStatus.CANCELLED,
                        error="cancelled by fail-fast", attempts=fails)
                    self._emit_finished(index, "cancelled", fails)
                pending = []
                if leftovers:  # await stragglers: nothing runs detached
                    wait(leftovers)
            serialize, suspects = self._isolation_mode(
                wave, pending, serialize, suspects, crash_break,
                crashed_alone)
        return reports  # type: ignore[return-value]

    def _drive_wave(self, futures: Sequence[Future],
                    policy: FaultPolicy) -> FrozenSet[Future]:
        """Block until the wave settles or a hung job expires.

        Each job's ``job_timeout`` budget is anchored to the moment its
        future is first *observed* running — a job still queued behind
        a busy pool is never charged for its siblings' wall time.  (The
        executor flags a future as running when it enters the worker
        call queue, so the anchor can lead true execution by the
        queue's one-extra-item slack; that bites only when every worker
        is already stuck near the budget.)  On expiry the hung pool is
        killed and the expired futures returned; the settle phase
        charges exactly those and resubmits unfinished siblings
        uncharged.  A pool break ends the wait naturally: the executor
        marks every outstanding future done with ``BrokenProcessPool``.

        Without a timeout there is nothing to watch: the wave is
        awaited whole, except under fail-fast, where settling starts
        immediately so the tail can still be cancelled before it runs.
        """
        if policy.job_timeout is None:
            if not policy.fail_fast:
                wait(futures)
            return frozenset()
        started: Dict[Future, float] = {}
        while True:
            _, not_done = wait(futures, timeout=_TIMEOUT_POLL)
            if not not_done:
                return frozenset()
            now = time.monotonic()
            expired = set()
            for future in not_done:
                begun = started.get(future)
                if begun is None:
                    if future.running():
                        started[future] = now
                elif now - begun > policy.job_timeout:
                    expired.add(future)
            if expired:
                self._teardown_pool(kill=True)
                if self._tel is not None:
                    self._tel.emit(PoolRebuilt.now(reason="timeout"))
                return frozenset(expired)

    @staticmethod
    def _isolation_mode(wave: Sequence[Tuple[int, int]],
                        pending: Sequence[Tuple[int, int]],
                        serialize: bool, suspects: Set[int],
                        crash_break: bool, crashed_alone: bool,
                        ) -> Tuple[bool, Set[int]]:
        """Decide whether the next wave runs one job or all of them.

        An unattributable pool break (several jobs shared the pool)
        marks the wave's unfinished jobs as suspects and switches to
        one-job waves.  A suspect is cleared once it has run alone:
        either it crashed the pool by itself — culprit found and
        charged, every other suspect exonerated at once — or it
        settled cleanly, shrinking the candidate set.  Parallel waves
        resume the moment the suspect set drains, so one crash never
        serialises the rest of a large sweep.
        """
        if crashed_alone:
            return False, set()
        if crash_break and len(wave) > 1:
            wave_indices = {index for index, _ in wave}
            return True, suspects | {index for index, _ in pending
                                     if index in wave_indices}
        if serialize and wave:
            index, fails = wave[0]
            # A solo job resubmitted with its failure count untouched
            # (pool killed under it by a sibling-less cancel) is still
            # unexplained; anything else — settled, charged, or
            # charged-and-retried — clears it.
            requeued_uncharged = any(i == index and f == fails
                                     for i, f in pending)
            if not requeued_uncharged:
                suspects.discard(index)
            if not suspects:
                return False, suspects
        return serialize, suspects

    def _salvage(self, reports: List[Optional[JobReport]],
                 pending: List[Tuple[int, int]], index: int, fails: int,
                 future: Future, policy: FaultPolicy) -> bool:
        """After a pool break: harvest a finished future or resubmit.

        Returns True when the job terminally failed (fail-fast cue).
        """
        if future.done() and not future.cancelled():
            try:
                value = future.result(timeout=0)
            except (BrokenProcessPool, CancelledError,
                    FutureTimeoutError):
                pending.append((index, fails))
            except Exception as exc:
                return self._settle_failure(reports, pending, index,
                                            fails + 1, exc, policy)
            else:
                reports[index] = JobReport(
                    index=index, status=JobStatus.OK, value=value,
                    attempts=fails + 1)
                self._emit_finished(index, "ok", fails + 1, value)
            return False
        future.cancel()
        pending.append((index, fails))
        return False

    def _settle_failure(self, reports: List[Optional[JobReport]],
                        pending: List[Tuple[int, int]], index: int,
                        failures: int, exc: BaseException,
                        policy: FaultPolicy) -> bool:
        """Record one failed attempt; retry or finalise.  True = abort."""
        if failures <= policy.max_retries:
            pending.append((index, failures))
            self._emit_retry(index, failures, "failed")
            return False
        reports[index] = JobReport(
            index=index, status=JobStatus.FAILED,
            error=_format_error(exc), attempts=failures, exception=exc)
        self._emit_finished(index, "failed", failures)
        return policy.fail_fast

    def _settle_timeout(self, reports: List[Optional[JobReport]],
                        pending: List[Tuple[int, int]], index: int,
                        failures: int, policy: FaultPolicy) -> bool:
        """Record one expired attempt; retry or finalise.  True = abort."""
        if failures <= policy.max_retries:
            pending.append((index, failures))
            self._emit_retry(index, failures, "timed_out")
            return False
        reports[index] = JobReport(
            index=index, status=JobStatus.TIMED_OUT,
            error=(f"timed out after {policy.job_timeout}s "
                   f"(attempt {failures}); worker killed"),
            attempts=failures)
        self._emit_finished(index, "timed_out", failures)
        return policy.fail_fast

    def _pool(self) -> ProcessPoolExecutor:
        if self._executor is None:
            init = self.telemetry.pool_init() \
                if self.telemetry is not None else None
            if init is not None:
                initializer, initargs = init
                self._executor = ProcessPoolExecutor(
                    max_workers=self.jobs, initializer=initializer,
                    initargs=initargs)
            else:
                self._executor = ProcessPoolExecutor(
                    max_workers=self.jobs)
        return self._executor

    def _teardown_pool(self, kill: bool = False) -> None:
        """Drop the executor; with ``kill``, terminate its workers.

        Used when a worker hangs past its timeout (the only way to
        reclaim it) or the pool is already broken.  The next
        :meth:`_pool` call builds a fresh executor.
        """
        executor, self._executor = self._executor, None
        if executor is None:
            return
        if kill:
            processes = list(getattr(executor, "_processes", {})
                             .values())
            for process in processes:
                if process.is_alive():
                    process.terminate()
            for process in processes:
                process.join(timeout=1.0)
        try:
            executor.shutdown(wait=False, cancel_futures=True)
        except Exception:  # pragma: no cover - defensive teardown
            pass

    # ------------------------------------------------------------------
    # simulation jobs
    # ------------------------------------------------------------------

    def run_sim_jobs(self, jobs: Sequence[SimJob],
                     policy: Optional[FaultPolicy] = None,
                     worker: Optional[Callable[[SimJob], JobOutcome]]
                     = None) -> List[JobOutcome]:
        """Execute a batch of grid cells (cache-aware, order-preserving).

        Every cell gets a :class:`JobOutcome` — failed cells carry a
        failure manifest instead of a result, so a partial grid still
        returns whole.  ``worker`` overrides the executing callable
        (the fault-injection seam used by the test-suite).

        Unless ledgers are disabled, the batch is recorded as one
        run-ledger JSONL (see :mod:`repro.obs.ledger`): the records
        are derived from the very outcome list returned here, so
        ledger and results agree by construction, and each outcome's
        manifest is stamped with the batch's ``run_id``.
        """
        self._sweep_cache_once()
        fn = worker if worker is not None else partial(
            execute_job, cache_dir=self.cache_dir,
            cache_max_bytes=self.cache_max_bytes)
        ledger = self._open_ledger(len(jobs))
        try:
            reports = self.map_outcomes(fn, jobs, policy=policy)
        except BaseException:
            if ledger is not None:
                ledger.close(aborted=True, **self.ledger_meta)
            raise
        outcomes = [outcome_from_report(job, report)
                    for job, report in zip(jobs, reports)]
        if ledger is not None:
            for index, (job, outcome) in enumerate(zip(jobs, outcomes)):
                outcome.manifest.run_id = ledger.run_id
                ledger.job(**_ledger_record(index, job, outcome))
            ledger.close(**self.ledger_meta)
            self.last_run_id = ledger.run_id
        return outcomes

    def _open_ledger(self, job_count: int) -> Optional[LedgerWriter]:
        """A writer for this batch, or None when ledgers are off."""
        if self.ledger is False:
            return None
        if self.ledger is True:
            if not self.cache_dir:
                return None
            directory = ledger_dir_for(self.cache_dir)
        else:
            directory = Path(self.ledger)
        return LedgerWriter(
            directory, new_run_id(), jobs=job_count,
            engine_jobs=self.jobs, cache_dir=str(self.cache_dir or ""),
            fast_forward=self.fast_forward)

    def _sweep_cache_once(self) -> None:
        """One janitor pass per engine, before jobs touch the cache.

        Workers open their caches with the janitor off — re-scanning
        every group directory per job would grow with cache size — so
        orphaned ``.tmp`` files are swept here, once, in the parent.
        """
        if self._cache_swept or not self.cache_dir:
            return
        self._cache_swept = True
        RunCache(self.cache_dir, janitor=True)

    def run_sim_job(self, job: SimJob,
                    policy: Optional[FaultPolicy] = None) -> JobOutcome:
        """Execute one grid cell (still cache-aware and fault-aware)."""
        return self.run_sim_jobs([job], policy=policy)[0]

    def open_cache(self) -> Optional[RunCache]:
        """A cache handle on this engine's directory (None if disabled)."""
        if not self.cache_dir:
            return None
        return RunCache(self.cache_dir, max_bytes=self.cache_max_bytes)

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------

    def close(self) -> None:
        """Shut the worker pool down (idempotent).

        Pending futures are cancelled rather than drained, so a close
        mid-failure never waits on work nobody will read.
        """
        if self._executor is not None:
            self._executor.shutdown(wait=True, cancel_futures=True)
            self._executor = None

    def __enter__(self) -> "ParallelEngine":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def __del__(self) -> None:  # pragma: no cover - interpreter teardown
        try:
            self.close()
        except Exception:
            pass

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (f"ParallelEngine(jobs={self.jobs}, "
                f"cache_dir={self.cache_dir!r}, "
                f"fast_forward={self.fast_forward}, "
                f"policy={self.policy})")
