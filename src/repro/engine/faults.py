"""Structured job outcomes and the engine's fault policy.

The parallel engine used to surface a worker failure the way
``concurrent.futures`` does — the first ``future.result()`` that raises
aborts the whole batch and strands its siblings.  A sweep over the
experiment grid cannot live with that: one bad cell must not cost the
other hundred.  This module defines the vocabulary the fault-tolerant
:meth:`~repro.engine.pool.ParallelEngine.map_outcomes` speaks:

* :class:`JobStatus` — the terminal state of one job (``ok`` /
  ``failed`` / ``timed_out`` / ``cancelled``);
* :class:`JobReport` — one job's structured outcome: its value on
  success, the formatted traceback on failure, and how many attempts
  were consumed (``attempts > 1`` means the job was retried);
* :class:`FaultPolicy` — the retry/timeout knobs (bounded exponential
  backoff between attempts, per-job wall-clock timeout, fail-fast);
* :class:`JobFailedError` — what the strict helpers raise when a job
  exhausted its budget and no original exception object is available.

Determinism note: a retried job re-executes the same pure function on
the same pickled spec, so a retry's result is bit-identical to a
first-try result — retries change provenance (``attempts``), never
values.  ``tests/engine/test_faults.py`` pins this.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Any, Optional


class JobStatus(enum.Enum):
    """Terminal state of one job inside a batch."""

    OK = "ok"
    FAILED = "failed"
    TIMED_OUT = "timed_out"
    #: Never executed to completion because fail-fast aborted the batch.
    CANCELLED = "cancelled"


@dataclass(frozen=True)
class FaultPolicy:
    """Retry / timeout / abort policy for one batch of jobs.

    Attributes:
        max_retries: Extra attempts granted to a failed or timed-out
            job (0 = first failure is final).  A job therefore runs at
            most ``max_retries + 1`` times.
        job_timeout: Per-job wall-clock budget in seconds, anchored to
            the moment the job is observed executing on a worker — a
            job queued behind a busy pool is never charged for its
            siblings' time.  Enforced only on the pooled path — a hung
            worker process is killed and its pool rebuilt; inline
            execution cannot preempt a call.
        backoff_base: First retry delay in seconds; successive retries
            double it (bounded exponential backoff).  0 disables the
            sleep (useful in tests).
        backoff_cap: Upper bound on any single backoff sleep.
        fail_fast: Abort the batch at the first job that exhausts its
            retry budget: remaining jobs are cancelled (reported as
            :attr:`JobStatus.CANCELLED`) instead of executed.
    """

    max_retries: int = 0
    job_timeout: Optional[float] = None
    backoff_base: float = 0.05
    backoff_cap: float = 2.0
    fail_fast: bool = False

    def __post_init__(self) -> None:
        if self.max_retries < 0:
            raise ValueError("max_retries must be >= 0")
        if self.job_timeout is not None and self.job_timeout <= 0:
            raise ValueError("job_timeout must be positive")
        if self.backoff_base < 0 or self.backoff_cap < 0:
            raise ValueError("backoff values must be >= 0")

    def backoff(self, failures: int) -> float:
        """Sleep before the ``failures``-th retry (bounded exponential)."""
        if failures <= 0 or self.backoff_base <= 0:
            return 0.0
        return min(self.backoff_cap,
                   self.backoff_base * (2.0 ** (failures - 1)))


@dataclass
class JobReport:
    """Structured outcome of one job in a batch.

    Attributes:
        index: The job's position in the submitted batch.
        status: Terminal state.
        value: The worker's return value (``None`` unless ``ok``).
        error: Formatted traceback (failures) or a one-line reason
            (timeouts, cancellations); empty on success.
        attempts: Execution attempts consumed.  ``attempts > 1`` means
            the job failed at least once and was retried; cancelled
            jobs may report 0.
        exception: The original exception object when one crossed the
            process boundary — kept so strict callers can re-raise the
            real type.  Not part of any serialised record.
    """

    index: int
    status: JobStatus
    value: Any = None
    error: str = ""
    attempts: int = 1
    exception: Optional[BaseException] = None

    @property
    def ok(self) -> bool:
        """True when the job produced a value."""
        return self.status is JobStatus.OK

    @property
    def retried(self) -> bool:
        """True when at least one attempt failed before the outcome."""
        return self.attempts > 1

    def to_exception(self) -> BaseException:
        """The exception a strict caller should raise for this report."""
        if self.exception is not None:
            return self.exception
        return JobFailedError(
            f"job {self.index} {self.status.value} after "
            f"{self.attempts} attempt(s)"
            + (f": {last_error_line(self.error)}" if self.error else ""),
            status=self.status, error=self.error)


class JobFailedError(RuntimeError):
    """A job exhausted its retry budget (or was cancelled by fail-fast).

    Carries the terminal :class:`JobStatus` and the worker's formatted
    traceback so callers that report (rather than crash) keep the full
    context.
    """

    def __init__(self, message: str, *,
                 status: JobStatus = JobStatus.FAILED,
                 error: str = "") -> None:
        super().__init__(message)
        self.status = status
        self.error = error


def last_error_line(text: str) -> str:
    """The final non-empty line of a traceback — the exception itself."""
    lines = [line for line in text.strip().splitlines() if line.strip()]
    return lines[-1] if lines else ""


__all__ = [
    "FaultPolicy",
    "JobFailedError",
    "JobReport",
    "JobStatus",
    "last_error_line",
]
