"""Parallel execution engine: process-pool fan-out, persistent caching.

The experiment grid — (benchmark × technique × seed) cells, and the
per-SM parts of a multi-SM :class:`~repro.sim.gpu.GPU` run — is
embarrassingly parallel: every cell is a pure function of a picklable
job spec.  This package exploits that structure:

* :mod:`repro.engine.faults` — structured job outcomes
  (:class:`JobReport`, :class:`JobStatus`) and the retry/timeout
  :class:`FaultPolicy` that keeps one bad cell from killing a sweep;
* :mod:`repro.engine.jobs` — frozen job specs (:class:`SimJob`,
  :class:`SMPartJob`) and the top-level worker functions that execute
  them, including the on-disk kernel-trace memoisation;
* :mod:`repro.engine.cache` — the persistent ``.repro-cache/`` store,
  keyed by the :func:`repro.obs.manifest.config_hash` machinery;
* :mod:`repro.engine.pool` — :class:`ParallelEngine`, the
  ``ProcessPoolExecutor`` wrapper that fans jobs out and collects
  results in submission order, so aggregated output is bit-identical
  to a serial run.  Hand it an
  :class:`~repro.obs.telemetry.EngineTelemetry` and the whole batch
  streams onto the parent event bus (with per-batch run ledgers under
  ``<cache_dir>/ledger/``).

The harness (:mod:`repro.harness.experiment`) and the CLI's
``--jobs`` / ``--no-cache`` flags are the user-facing surface.
"""

from repro.engine.cache import RunCache
from repro.engine.faults import (
    FaultPolicy,
    JobFailedError,
    JobReport,
    JobStatus,
)
from repro.engine.jobs import (
    JobOutcome,
    SimJob,
    SMPartJob,
    execute_job,
    execute_sm_part,
    failure_manifest,
    load_or_build_kernel,
    outcome_from_report,
)
from repro.engine.pool import ParallelEngine

__all__ = [
    "FaultPolicy",
    "JobFailedError",
    "JobOutcome",
    "JobReport",
    "JobStatus",
    "ParallelEngine",
    "RunCache",
    "SimJob",
    "SMPartJob",
    "execute_job",
    "execute_sm_part",
    "failure_manifest",
    "load_or_build_kernel",
    "outcome_from_report",
]
