"""Picklable job specs and the worker functions that execute them.

A worker process receives a frozen job spec (everything needed to
reproduce one simulation), executes it, and returns the
:class:`~repro.sim.sm.SimResult` plus a
:class:`~repro.obs.manifest.RunManifest` provenance record.  Results
are deterministic functions of the spec — the simulator has no hidden
global state — which is what makes both the process fan-out and the
on-disk cache sound.
"""

from __future__ import annotations

import multiprocessing
import time
from dataclasses import dataclass, field
from typing import Optional

from repro.core.adaptive import AdaptiveConfig
from repro.core.spec import TechniqueSpec, as_spec
from repro.core.techniques import build_sm
from repro.engine.cache import CACHE_VERSION, RunCache
from repro.engine.faults import JobReport, JobStatus
from repro.isa.trace import KernelTrace
from repro.isa.tracegen import TraceGenerator
from repro.obs.manifest import RunManifest, config_hash
from repro.obs.telemetry import JobTelemetry, current_worker, job_label
from repro.sim.config import SMConfig
from repro.sim.sm import SimResult
from repro.workloads.registry import scaled_spec
from repro.workloads.specs import get_profile


def _worker_name() -> str:
    return multiprocessing.current_process().name


# ----------------------------------------------------------------------
# kernel-trace memoisation
# ----------------------------------------------------------------------

def trace_cache_key(benchmark: str, seed: int, scale: float) -> str:
    """Cache key for one generated kernel trace.

    Keyed by the *scaled spec* (not just the name) so editing a
    benchmark profile invalidates its traces, plus seed and scale.
    """
    spec = scaled_spec(get_profile(benchmark).spec, scale)
    return (f"{benchmark}-s{seed}-"
            f"{config_hash(spec, seed, scale, CACHE_VERSION)}")


def load_or_build_kernel(benchmark: str, seed: int, scale: float,
                         cache: Optional[RunCache] = None) -> KernelTrace:
    """Memoised :func:`repro.workloads.registry.build_kernel`.

    With a cache, the generated trace is stored on disk so parallel
    workers (and later sessions) deserialise instead of regenerating —
    trace generation is a visible fraction of small-run wall time.
    """
    spec = scaled_spec(get_profile(benchmark).spec, scale)
    if cache is None:
        return TraceGenerator(spec, seed=seed).generate()
    key = trace_cache_key(benchmark, seed, scale)
    kernel = cache.get("traces", key)
    if kernel is None:
        kernel = TraceGenerator(spec, seed=seed).generate()
        cache.put("traces", key, kernel)
    return kernel


# ----------------------------------------------------------------------
# whole-run jobs (one experiment-grid cell)
# ----------------------------------------------------------------------

@dataclass(frozen=True)
class SimJob:
    """One (benchmark × technique) simulation, fully specified.

    ``config`` is anything :func:`repro.core.spec.as_spec` resolves —
    a :class:`~repro.core.spec.TechniqueSpec`, a registered technique
    name, a :class:`~repro.core.techniques.Technique` member or a
    legacy :class:`~repro.core.techniques.TechniqueConfig`.  It is kept
    exactly as given (callers may inspect what they submitted); the
    :attr:`spec` property is the resolved identity every derived key
    and manifest uses.
    """

    benchmark: str
    config: object
    sm_config: SMConfig = field(default_factory=SMConfig)
    seed: int = 0
    scale: float = 1.0
    fast_forward: bool = True

    @property
    def spec(self) -> TechniqueSpec:
        """The resolved technique spec this job runs."""
        return as_spec(self.config)

    def cache_key(self) -> str:
        """Result-cache key: human-readable prefix + full config hash.

        Keyed on the spec's canonical hash, so an enum member, its name
        string and an equal hand-built spec share cache entries.
        ``fast_forward`` is part of the key even though results are
        bit-identical by contract — a fast-forward bug then cannot
        poison serially-produced entries (or the other way round).
        """
        spec = self.spec
        profile = get_profile(self.benchmark)
        digest = config_hash(
            scaled_spec(profile.spec, self.scale), spec.spec_hash(),
            self.sm_config, self.seed, self.scale, profile.dram_latency,
            self.fast_forward, CACHE_VERSION)
        return (f"{self.benchmark}-{spec.name}"
                f"-s{self.seed}-{digest}")


@dataclass
class JobOutcome:
    """What the engine returns for one :class:`SimJob`.

    Successful jobs carry the :class:`~repro.sim.sm.SimResult`; failed
    ones carry ``result=None`` plus a failure manifest, so a batch with
    bad cells still comes back whole and in submission order.
    """

    result: Optional[SimResult]
    manifest: RunManifest
    status: JobStatus = JobStatus.OK
    error: str = ""
    attempts: int = 1

    @property
    def ok(self) -> bool:
        """True when the job produced a result."""
        return self.status is JobStatus.OK


def failure_manifest(job: SimJob, report: JobReport) -> RunManifest:
    """Provenance record for a cell that produced no result.

    Pins the failed run to its exact configuration — the same identity
    a successful manifest carries — so a sweep's manifest list records
    exactly which cells failed, how often they were attempted, and why.
    """
    spec = job.spec
    return RunManifest(
        benchmark=job.benchmark,
        technique=spec.name,
        seed=job.seed,
        scale=job.scale,
        config_hash=config_hash(spec.spec_hash(), job.sm_config),
        cycles=0,
        instructions=0,
        status=report.status.value,
        error=report.error,
        attempts=max(report.attempts, 0),
        spec=spec.to_dict())


def outcome_from_report(job: SimJob, report: JobReport) -> JobOutcome:
    """Fold one :class:`JobReport` into the sim-job outcome shape."""
    if report.ok:
        outcome = report.value
        outcome.attempts = report.attempts
        outcome.manifest.attempts = report.attempts
        return outcome
    return JobOutcome(result=None, manifest=failure_manifest(job, report),
                      status=report.status, error=report.error,
                      attempts=report.attempts)


def execute_job(job: SimJob,
                cache_dir: Optional[str] = None,
                cache_max_bytes: Optional[int] = None) -> JobOutcome:
    """Execute one grid cell (top-level, hence picklable).

    Checks the result cache first; on a miss, builds the (trace-cached)
    kernel, wires the SM and runs it, then stores the result.  Either
    way a :class:`RunManifest` records what happened — cache hits carry
    ``cache_hit=True`` and a ``cache_load`` wall phase, fresh runs the
    usual ``build_trace`` / ``simulate`` phases — and ``worker`` names
    the executing process.

    When the process carries worker telemetry (installed by the pool
    initializer, or the engine's inline path), the job runs inside a
    telemetry session: :class:`~repro.obs.telemetry.JobStarted` goes
    out immediately, cache hits/misses stream as they happen, sim
    events are digested by a bounded sampler, and a compact
    :class:`~repro.obs.telemetry.WorkerEventSummary` ships when the
    job completes.  Without telemetry (the default) this function is
    byte-for-byte the old path: one ``None`` check, disabled sim bus.

    The cache is opened with the janitor off: sweeping orphaned temp
    files is the engine's once-per-batch job
    (:meth:`~repro.engine.pool.ParallelEngine.run_sim_jobs`), not
    something every job in every worker should re-pay.
    """
    telemetry = current_worker()
    if telemetry is None:
        return _run_cell(job, cache_dir, cache_max_bytes, None)
    with telemetry.profile_job():
        return _run_cell(job, cache_dir, cache_max_bytes,
                         telemetry.job_session(job_label(job)))


def _run_cell(job: SimJob, cache_dir: Optional[str],
              cache_max_bytes: Optional[int],
              session: Optional[JobTelemetry]) -> JobOutcome:
    cache = RunCache(cache_dir, max_bytes=cache_max_bytes,
                     janitor=False,
                     listener=session.emit if session is not None
                     else None) if cache_dir else None
    spec = job.spec
    settings_hash = config_hash(spec.spec_hash(), job.sm_config)
    key = job.cache_key()

    if cache is not None:
        t0 = time.perf_counter()
        result = cache.get("results", key)
        if result is not None:
            manifest = RunManifest(
                benchmark=job.benchmark,
                technique=spec.name,
                seed=job.seed,
                scale=job.scale,
                config_hash=settings_hash,
                cycles=result.cycles,
                instructions=result.stats.instructions_retired,
                wall_seconds={"cache_load": time.perf_counter() - t0},
                worker=_worker_name(),
                cache_hit=True,
                spec=spec.to_dict())
            if session is not None:
                session.finish(cycles=result.cycles, cache_hit=True)
            return JobOutcome(result=result, manifest=manifest)

    t0 = time.perf_counter()
    kernel = load_or_build_kernel(job.benchmark, job.seed, job.scale,
                                  cache=cache)
    t1 = time.perf_counter()
    sm = build_sm(kernel, spec, sm_config=job.sm_config,
                  dram_latency=get_profile(job.benchmark).dram_latency,
                  bus=session.sim_bus() if session is not None else None,
                  fast_forward=job.fast_forward)
    result = sm.run()
    t2 = time.perf_counter()
    if cache is not None:
        cache.put("results", key, result)
    if session is not None:
        session.finish(cycles=result.cycles)
    manifest = RunManifest(
        benchmark=job.benchmark,
        technique=spec.name,
        seed=job.seed,
        scale=job.scale,
        config_hash=settings_hash,
        cycles=result.cycles,
        instructions=result.stats.instructions_retired,
        wall_seconds={"build_trace": t1 - t0, "simulate": t2 - t1},
        events_published=sm.bus.events_published,
        worker=_worker_name(),
        spec=spec.to_dict())
    return JobOutcome(result=result, manifest=manifest)


# ----------------------------------------------------------------------
# per-SM jobs (one part of a multi-SM GPU run)
# ----------------------------------------------------------------------

@dataclass(frozen=True)
class SMPartJob:
    """One SM's share of a multi-SM :class:`~repro.sim.gpu.GPU` run.

    Carries the already-split part trace (parts are small and cheap to
    pickle), so workers need no access to the parent kernel.
    """

    part: KernelTrace
    config: object
    sm_config: SMConfig
    dram_latency: Optional[int] = None
    fast_forward: bool = True


def sm_part_label(job: SMPartJob) -> str:
    """Telemetry label for one SM part: ``kernel#smN/technique``.

    The part trace already carries its SM id in the name (the splitter
    suffixes ``#smN``), so live progress distinguishes the fifteen
    parts of one device launch the same way grid cells are told apart.
    """
    return f"{job.part.name}/{as_spec(job.config).name}"


def execute_sm_part(job: SMPartJob) -> SimResult:
    """Run one SM part (top-level, hence picklable).

    Mirrors :func:`execute_job`'s telemetry contract: with worker
    telemetry installed, the part runs inside a job session —
    :class:`~repro.obs.telemetry.JobStarted` on entry, a
    :class:`~repro.obs.telemetry.WorkerEventSummary` on completion —
    so device-scale fan-outs appear in live progress and the run
    ledger like any other batch.  Without telemetry it is exactly the
    bare simulation.
    """
    telemetry = current_worker()
    if telemetry is None:
        return _run_sm_part(job, None)
    with telemetry.profile_job():
        return _run_sm_part(job, telemetry.job_session(sm_part_label(job)))


def _run_sm_part(job: SMPartJob,
                 session: Optional[JobTelemetry]) -> SimResult:
    sm = build_sm(job.part, job.config, sm_config=job.sm_config,
                  dram_latency=job.dram_latency,
                  bus=session.sim_bus() if session is not None else None,
                  fast_forward=job.fast_forward)
    result = sm.run()
    if session is not None:
        session.finish(cycles=result.cycles)
    return result


# Re-exported so callers annotating AdaptiveConfig overrides don't need
# a separate import path through the engine.
__all__ = [
    "AdaptiveConfig",
    "JobOutcome",
    "SMPartJob",
    "SimJob",
    "execute_job",
    "execute_sm_part",
    "sm_part_label",
    "failure_manifest",
    "load_or_build_kernel",
    "outcome_from_report",
    "trace_cache_key",
]
