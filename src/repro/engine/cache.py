"""Persistent on-disk result/trace cache under ``.repro-cache/``.

Layout::

    .repro-cache/
        results/<benchmark>-<technique>-s<seed>-<hash>.pkl
        traces/<benchmark>-s<seed>-<hash>.pkl

The human-readable filename prefix is cosmetic; the trailing
``config_hash`` carries the full identity (every config object, the
seed, the scale, the DRAM latency and a cache-format version salt), so
any config change — including editing a default inside a dataclass —
produces a different key and old entries simply stop being hit.
Invalidation is therefore "delete the directory whenever you feel like
it": entries are immutable once written.

Writes are atomic (temp file + ``os.replace``) so parallel workers can
race on the same key safely — last writer wins with an identical
payload.  A corrupt or unreadable entry is treated as a miss.
"""

from __future__ import annotations

import os
import pickle
import tempfile
from pathlib import Path
from typing import Any, Optional, Union

#: Default cache root, relative to the current working directory.
DEFAULT_CACHE_DIR = ".repro-cache"

#: Bump to orphan every existing entry (cache format change, simulator
#: semantics change that config hashes cannot see, ...).
CACHE_VERSION = 1


class RunCache:
    """Pickle-per-entry store with atomic writes and hit/miss counters."""

    def __init__(self, root: Union[str, Path] = DEFAULT_CACHE_DIR) -> None:
        self.root = Path(root)
        self.hits = 0
        self.misses = 0

    def path(self, group: str, key: str) -> Path:
        """Filesystem location of one entry."""
        return self.root / group / f"{key}.pkl"

    def get(self, group: str, key: str) -> Optional[Any]:
        """Load an entry, or None on miss (including corrupt entries)."""
        path = self.path(group, key)
        try:
            with open(path, "rb") as handle:
                value = pickle.load(handle)
        except (OSError, pickle.PickleError, EOFError, AttributeError,
                ImportError):
            self.misses += 1
            return None
        self.hits += 1
        return value

    def put(self, group: str, key: str, value: Any) -> None:
        """Store an entry atomically (concurrent writers are safe)."""
        path = self.path(group, key)
        path.parent.mkdir(parents=True, exist_ok=True)
        fd, tmp_name = tempfile.mkstemp(dir=path.parent,
                                        prefix=f".{key}.", suffix=".tmp")
        try:
            with os.fdopen(fd, "wb") as handle:
                pickle.dump(value, handle, protocol=pickle.HIGHEST_PROTOCOL)
            os.replace(tmp_name, path)
        except BaseException:
            try:
                os.unlink(tmp_name)
            except OSError:
                pass
            raise

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (f"RunCache({str(self.root)!r}, hits={self.hits}, "
                f"misses={self.misses})")
