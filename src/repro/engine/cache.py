"""Persistent on-disk result/trace cache under ``.repro-cache/``.

Layout::

    .repro-cache/
        results/<benchmark>-<technique>-s<seed>-<hash>.pkl
        traces/<benchmark>-s<seed>-<hash>.pkl

The human-readable filename prefix is cosmetic; the trailing
``config_hash`` carries the full identity (every config object, the
seed, the scale, the DRAM latency and a cache-format version salt), so
any config change — including editing a default inside a dataclass —
produces a different key and old entries simply stop being hit.
Invalidation is therefore "delete the directory whenever you feel like
it": entries are immutable once written.

The store is managed, not just a pile of pickles:

* **Atomic writes** (temp file + ``os.replace``) so parallel workers
  can race on the same key safely — last writer wins with an identical
  payload.  The rename is the only publication barrier: readers see
  either the complete old entry or the complete new one, never a
  partial write, and a writer whose temp file is swept out from under
  it (a mis-tuned janitor in another process) transparently rewrites.
* **Payload checksums**: every entry is ``MAGIC + sha256(payload) +
  payload``.  A truncated or bit-flipped entry fails verification and
  reads as a miss — it is never unpickled — as does any pre-checksum
  legacy file.
* **Janitor**: a worker killed between ``mkstemp`` and ``os.replace``
  leaves a ``.tmp`` orphan behind; opening a cache sweeps temp files
  older than :data:`STALE_TMP_AGE` (young ones may belong to a live
  writer and are left alone).
* **Size cap** (optional): ``max_bytes`` evicts least-recently-used
  entries once the total crosses the cap; a hit refreshes its entry's
  recency.  The running total is tracked incrementally (one directory
  scan on the first capped write, O(1) per write after that), so the
  full scan is only re-paid when eviction actually runs — which also
  re-syncs the total against other processes' writes.
* **Cross-process maintenance lock**: the janitor sweep and the LRU
  evictor take a non-blocking ``flock`` on ``.maintenance.lock`` in
  the cache root, so at most one process performs a destructive sweep
  at a time.  Losing the race is fine — the other process is doing
  the same work — so the loser just skips its turn.  Entry reads and
  writes never take the lock: the rename barrier already makes them
  safe, and a lock there would serialise the hot path for nothing.
"""

from __future__ import annotations

import hashlib
import logging
import multiprocessing
import os
import pickle
import tempfile
import time
from contextlib import contextmanager
from pathlib import Path
from typing import Any, Callable, Iterator, Optional, Union

try:  # POSIX only; the lock degrades to a no-op elsewhere
    import fcntl
except ImportError:  # pragma: no cover - non-POSIX platforms
    fcntl = None  # type: ignore[assignment]

from repro.obs.telemetry import (
    CacheEvicted,
    CacheHit,
    CacheMiss,
    CacheSwept,
)

_log = logging.getLogger("repro.engine.cache")

#: Default cache root, relative to the current working directory.
DEFAULT_CACHE_DIR = ".repro-cache"

#: Bump to orphan every existing entry (cache format change, simulator
#: semantics change that config hashes cannot see, ...).  2: entries
#: gained the checksummed header.  3: result keys switched from
#: ``TechniqueConfig`` reprs to canonical ``TechniqueSpec`` hashes.
CACHE_VERSION = 3

#: Entry header: magic tag + SHA-256 digest of the pickled payload.
MAGIC = b"RPC2"
_HEADER_LEN = len(MAGIC) + 32

#: Temp files older than this (seconds) are presumed orphaned by a
#: killed worker and swept; younger ones may be a live writer's.
STALE_TMP_AGE = 3600.0

#: Advisory lock file (cache root) serialising destructive maintenance
#: (janitor sweep, LRU eviction) across processes.
LOCK_FILENAME = ".maintenance.lock"


@contextmanager
def maintenance_lock(root: Union[str, Path],
                     blocking: bool = False) -> Iterator[bool]:
    """Advisory cross-process lock over one cache root.

    Yields True when the lock was acquired, False when another process
    holds it (non-blocking mode).  ``flock`` locks die with their
    holder, so a killed sweeper can never wedge the cache.  On
    platforms without ``fcntl`` the lock is a no-op that always
    acquires — single-process correctness there still comes from the
    rename barrier.
    """
    root = Path(root)
    if fcntl is None:  # pragma: no cover - non-POSIX platforms
        yield True
        return
    try:
        root.mkdir(parents=True, exist_ok=True)
        handle = open(root / LOCK_FILENAME, "a+b")
    except OSError:
        yield True  # unlockable root: fall back to rename-barrier only
        return
    try:
        flags = fcntl.LOCK_EX | (0 if blocking else fcntl.LOCK_NB)
        try:
            fcntl.flock(handle, flags)
        except OSError:
            yield False
            return
        try:
            yield True
        finally:
            fcntl.flock(handle, fcntl.LOCK_UN)
    finally:
        handle.close()


class RunCache:
    """Checksummed pickle-per-entry store with janitor and size cap.

    Args:
        root: Cache directory (created on first write).
        max_bytes: Optional total-size cap; exceeding it after a write
            evicts least-recently-used entries until back under.
        janitor: Sweep stale ``.tmp`` orphans when opening an existing
            cache directory (one scandir per group).  Engine workers
            open their per-job caches with this off — the engine
            sweeps once per batch instead.
        stale_tmp_age: Age in seconds past which a temp file counts as
            orphaned.
        listener: Optional callable receiving cache telemetry events
            (:class:`~repro.obs.telemetry.CacheHit` / ``CacheMiss`` /
            ``CacheEvicted`` / ``CacheSwept``) as they happen — a
            worker's telemetry session forwards them to the parent bus.
    """

    def __init__(self, root: Union[str, Path] = DEFAULT_CACHE_DIR,
                 max_bytes: Optional[int] = None,
                 janitor: bool = True,
                 stale_tmp_age: float = STALE_TMP_AGE,
                 listener: Optional[Callable] = None) -> None:
        self.root = Path(root)
        self.max_bytes = max_bytes
        self.stale_tmp_age = stale_tmp_age
        self.listener = listener
        self.hits = 0
        self.misses = 0
        self.corrupt_misses = 0
        self.evictions = 0
        self.swept_tmp = 0
        #: Approximate stored-bytes total, initialised lazily on the
        #: first capped write; eviction re-syncs it from disk.
        self._approx_bytes: Optional[int] = None
        if janitor and self.root.is_dir():
            self.sweep_tmp()

    def path(self, group: str, key: str) -> Path:
        """Filesystem location of one entry."""
        return self.root / group / f"{key}.pkl"

    # ------------------------------------------------------------------
    # entries
    # ------------------------------------------------------------------

    def get(self, group: str, key: str) -> Optional[Any]:
        """Load an entry, or None on miss.

        Corrupt, truncated, legacy-format and version-skewed entries
        all count as misses — the checksum is verified *before* any
        unpickling happens — but are tracked (and reported to the
        ``listener``) separately from plain absences.
        """
        path = self.path(group, key)
        try:
            blob = path.read_bytes()
        except OSError:  # absent (or unreadable): the ordinary miss
            self.misses += 1
            self._emit(CacheMiss, group=group, key=key)
            return None
        try:
            value = _decode(blob)
        except (ValueError, pickle.PickleError, EOFError,
                AttributeError, ImportError):
            # Present but unusable: damaged, legacy or foreign entry.
            self.misses += 1
            self.corrupt_misses += 1
            self._emit(CacheMiss, group=group, key=key, corrupt=True)
            return None
        try:
            os.utime(path)  # refresh recency for LRU eviction
        except OSError:
            pass
        self.hits += 1
        self._emit(CacheHit, group=group, key=key)
        return value

    def put(self, group: str, key: str, value: Any) -> None:
        """Store an entry atomically (concurrent writers are safe).

        ``os.replace`` is the publication barrier: readers observe the
        complete old entry or the complete new one.  If another
        process's janitor swept our temp file before the rename (only
        possible with a sweep cutoff shorter than our write time), the
        write is retried once with a fresh — therefore young — temp
        file.
        """
        payload = pickle.dumps(value, protocol=pickle.HIGHEST_PROTOCOL)
        blob = MAGIC + hashlib.sha256(payload).digest() + payload
        path = self.path(group, key)
        path.parent.mkdir(parents=True, exist_ok=True)
        for retry in (False, True):
            fd, tmp_name = tempfile.mkstemp(
                dir=path.parent, prefix=f".{key}.", suffix=".tmp")
            try:
                with os.fdopen(fd, "wb") as handle:
                    handle.write(blob)
                os.replace(tmp_name, path)
                break
            except FileNotFoundError:
                try:
                    os.unlink(tmp_name)
                except OSError:
                    pass
                if retry:
                    raise
            except BaseException:
                try:
                    os.unlink(tmp_name)
                except OSError:
                    pass
                raise
        if self.max_bytes is not None:
            if self._approx_bytes is None:
                self._approx_bytes = self.total_bytes()
            else:
                self._approx_bytes += len(blob)
            if self._approx_bytes > self.max_bytes:
                self._evict()

    def _emit(self, event_type: type, **fields: object) -> None:
        """Hand one cache event to the listener (never raises)."""
        if self.listener is None:
            return
        if event_type in (CacheHit, CacheMiss):
            fields.setdefault(
                "worker", multiprocessing.current_process().name)
        try:
            self.listener(event_type.now(**fields))
        except Exception:  # telemetry must never break the cache path
            _log.debug("cache listener failed", exc_info=True)

    # ------------------------------------------------------------------
    # management
    # ------------------------------------------------------------------

    def sweep_tmp(self, max_age: Optional[float] = None) -> int:
        """Remove orphaned ``.tmp`` files; returns how many were swept.

        A worker killed between ``mkstemp`` and ``os.replace`` would
        otherwise litter the cache forever.  Only files older than
        ``max_age`` (default: the cache's ``stale_tmp_age``) go — a
        fresh temp file may belong to a concurrent writer mid-flight.
        At most one process sweeps at a time (advisory flock); a loser
        skips its turn, since the winner is doing the same work.
        """
        with maintenance_lock(self.root) as held:
            if not held:
                return 0
            return self._sweep_tmp_locked(max_age)

    def _sweep_tmp_locked(self, max_age: Optional[float]) -> int:
        cutoff = time.time() - (self.stale_tmp_age if max_age is None
                                else max_age)
        removed = 0
        for group_dir in self._group_dirs():
            try:
                entries = list(os.scandir(group_dir))
            except OSError:
                continue
            for entry in entries:
                if not entry.name.endswith(".tmp"):
                    continue
                try:
                    if entry.stat().st_mtime <= cutoff:
                        os.unlink(entry.path)
                        removed += 1
                except OSError:
                    continue
        self.swept_tmp += removed
        if removed:
            _log.info("cache janitor: swept %d stale tmp file(s) "
                      "under %s", removed, self.root)
            self._emit(CacheSwept, removed=removed)
        return removed

    def total_bytes(self) -> int:
        """Summed size of every stored entry."""
        total = 0
        for path in self._entries():
            try:
                total += path.stat().st_size
            except OSError:
                continue
        return total

    def _evict(self) -> None:
        """Delete least-recently-used entries until under ``max_bytes``.

        Recency is the entry's mtime: writes stamp it, hits refresh it
        via ``os.utime``.  Racing processes may evict each other's
        entries; an evicted entry is simply a future miss.  The scan's
        exact total replaces the incremental estimate, correcting any
        drift from overwrites or concurrent writers.  The advisory
        maintenance lock keeps concurrent evictors from double-deleting
        one pass; a loser drops its size estimate so the next capped
        write re-measures against the winner's result.
        """
        with maintenance_lock(self.root) as held:
            if not held:
                # Another process is evicting right now; its pass
                # changes the on-disk total, so forget ours.
                self._approx_bytes = None
                return
            self._evict_locked()

    def _evict_locked(self) -> None:
        stamped = []
        total = 0
        for path in self._entries():
            try:
                stat = path.stat()
            except OSError:
                continue
            stamped.append((stat.st_mtime, stat.st_size, path))
            total += stat.st_size
        evicted = 0
        freed = 0
        if total > self.max_bytes:
            stamped.sort(key=lambda item: (item[0], str(item[2])))
            for _, size, path in stamped:
                if total <= self.max_bytes:
                    break
                try:
                    path.unlink()
                except OSError:
                    continue
                total -= size
                self.evictions += 1
                evicted += 1
                freed += size
        self._approx_bytes = total
        if evicted:
            _log.info("cache LRU cap: evicted %d entrie(s), freed %d "
                      "bytes (cap %d, now %d) under %s", evicted,
                      freed, self.max_bytes, total, self.root)
            self._emit(CacheEvicted, entries=evicted, bytes=freed)

    def _group_dirs(self) -> Iterator[Path]:
        try:
            children = list(self.root.iterdir())
        except OSError:
            return
        for child in children:
            if child.is_dir():
                yield child

    def _entries(self) -> Iterator[Path]:
        for group_dir in self._group_dirs():
            try:
                children = list(group_dir.iterdir())
            except OSError:
                continue
            for child in children:
                if child.suffix == ".pkl":
                    yield child

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (f"RunCache({str(self.root)!r}, hits={self.hits}, "
                f"misses={self.misses}, evictions={self.evictions})")


def _decode(blob: bytes) -> Any:
    """Verify an entry's header and checksum, then unpickle it."""
    if len(blob) < _HEADER_LEN or not blob.startswith(MAGIC):
        raise ValueError("missing or foreign cache entry header")
    digest = blob[len(MAGIC):_HEADER_LEN]
    payload = blob[_HEADER_LEN:]
    if hashlib.sha256(payload).digest() != digest:
        raise ValueError("checksum mismatch (truncated or corrupt entry)")
    return pickle.loads(payload)
