#!/usr/bin/env python3
"""Power-gating parameter sensitivity (reproduces the paper's Figure 11).

Sweeps the break-even time over {9, 14, 19} cycles and the wakeup delay
over {3, 6, 9} cycles, comparing conventional power gating against
Warped Gates on suite-average INT/FP static savings and geomean
performance.  The paper's headline: conventional gating degrades badly
at large BET / wakeup values while Warped Gates stays nearly flat.

A full-scale sweep runs the whole suite dozens of times; use ``--scale``
(and/or ``--benchmarks``) to trade fidelity for speed.

Usage::

    python examples/sensitivity_sweep.py [--scale 0.5]
        [--benchmarks hotspot sgemm mri ...]
"""

import argparse

from repro.analysis.report import format_table
from repro.harness.experiment import ExperimentRunner, ExperimentSettings
from repro.harness.sweeps import (
    SWEEP_HEADERS,
    bet_sweep,
    sweep_rows,
    wakeup_sweep,
)
from repro.workloads.specs import BENCHMARK_NAMES


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--scale", type=float, default=0.5)
    parser.add_argument("--benchmarks", nargs="+", default=None,
                        choices=BENCHMARK_NAMES)
    args = parser.parse_args()

    benchmarks = tuple(args.benchmarks) if args.benchmarks \
        else BENCHMARK_NAMES
    runner = ExperimentRunner(ExperimentSettings(scale=args.scale,
                                                 benchmarks=benchmarks))

    print(format_table(SWEEP_HEADERS, sweep_rows(bet_sweep(runner)),
                       title="Figure 11a: break-even time sensitivity"))
    print()
    print(format_table(SWEEP_HEADERS, sweep_rows(wakeup_sweep(runner)),
                       title="Figure 11b: wakeup delay sensitivity"))
    print("\nExpected shape: the gap between conv_pg and warped_gates "
          "widens as BET or wakeup delay grows; warped_gates performance "
          "stays near 1.0 throughout.")


if __name__ == "__main__":
    main()
