#!/usr/bin/env python3
"""Phase analysis: when do the execution units actually sleep?

Attaches a :class:`PowerTimeline` to a Warped Gates run and prints the
per-epoch gated fraction of each CUDA-core cluster as a sparkline-style
strip, plus the epoch table for one domain.  Memory-bound benchmarks
show clear sleep waves; compute-bound ones show the FP clusters dozing
while INT stays hot (or vice versa).

Usage::

    python examples/power_timeline.py [benchmark] [--epoch 500]
"""

import argparse

from repro.analysis.report import format_table
from repro.analysis.timeline import TIMELINE_HEADERS, PowerTimeline
from repro.core.techniques import Technique, TechniqueConfig, build_sm
from repro.workloads.registry import build_kernel
from repro.workloads.specs import BENCHMARK_NAMES, get_profile

#: Ten-level shading for the gated-fraction strips.
SHADES = " .:-=+*#%@"


def shade(fraction: float) -> str:
    index = min(int(fraction * len(SHADES)), len(SHADES) - 1)
    return SHADES[index]


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("benchmark", nargs="?", default="mri",
                        choices=BENCHMARK_NAMES)
    parser.add_argument("--epoch", type=int, default=500)
    parser.add_argument("--scale", type=float, default=1.0)
    args = parser.parse_args()

    kernel = build_kernel(args.benchmark, scale=args.scale)
    sm = build_sm(kernel, TechniqueConfig(Technique.WARPED_GATES),
                  dram_latency=get_profile(args.benchmark).dram_latency)
    timeline = PowerTimeline(sm, epoch_cycles=args.epoch,
                             names=("INT0", "INT1", "FP0", "FP1"))
    result = sm.run()

    print(f"benchmark: {args.benchmark}  cycles: {result.cycles}  "
          f"epoch: {args.epoch} cycles\n")
    print("gated fraction per epoch (' '=always on, '@'=fully gated):")
    for name in timeline.domains():
        strip = "".join(shade(f)
                        for f in timeline.gated_fraction_series(name))
        print(f"  {name:5s} |{strip}|")
    print()
    print(format_table(TIMELINE_HEADERS, timeline.to_rows("FP0"),
                       title="FP0 epoch detail"))


if __name__ == "__main__":
    main()
