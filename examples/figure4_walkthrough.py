#!/usr/bin/env python3
"""Figure 4 walkthrough: how the warp scheduler shapes idle cycles.

Recreates the paper's illustrative example: an active-warp set whose
heads are a mix of eight integer and four floating-point add
instructions (4-cycle latency, single-cycle initiation interval).  The
baseline two-level scheduler issues them greedily in arrival order,
chopping each unit's idleness into one- and two-cycle slivers; GATES
issues all the integer instructions first, so the FP pipeline sleeps in
one long window (and vice versa afterwards).

The script replays both schedules through the real simulator on a
single-cluster, single-issue SM (the figure's simplified machine) and
draws per-cycle occupancy charts.

Usage::

    python examples/figure4_walkthrough.py
"""

from typing import Dict, List

from repro.analysis.occupancy import OccupancyRecorder
from repro.core.techniques import Technique, TechniqueConfig, build_sm
from repro.isa.instructions import fp_op, int_op
from repro.isa.trace import KernelTrace, WarpTrace
from repro.sim.config import MemoryConfig, SMConfig
from repro.sim.sm import StreamingMultiprocessor

#: The figure's active-warp set: instruction type per warp, in arrival
#: order (INT1 INT2 FP1 INT3 FP2 INT4 INT5 INT6 INT7 FP3 FP4 INT8).
WARP_TYPES = ["INT", "INT", "FP", "INT", "FP", "INT",
              "INT", "INT", "INT", "FP", "FP", "INT"]

#: Simplified machine of the illustration: one SP cluster, one issue
#: slot, no memory traffic.
FIG4_CONFIG = SMConfig(n_sp_clusters=1, issue_width=1, fetch_width=12,
                       memory=MemoryConfig())


def build_fig4_kernel() -> KernelTrace:
    """One single-instruction warp per entry of the figure's set."""
    warps: List[WarpTrace] = []
    for warp_id, kind in enumerate(WARP_TYPES):
        inst = int_op(dest=0) if kind == "INT" else fp_op(dest=0)
        warps.append(WarpTrace(warp_id=warp_id, instructions=(inst,)))
    return KernelTrace(name="figure4", warps=warps, max_resident_warps=12)


def occupancy_chart(sm: StreamingMultiprocessor) -> Dict[str, str]:
    """Run the SM, recording a per-cycle busy/idle strip per pipeline."""
    recorder = OccupancyRecorder(sm, names=("INT0", "FP0"))
    sm.run()
    return recorder.strips()


def main() -> None:
    print(__doc__)
    print(f"active warp set: {' '.join(WARP_TYPES)}\n")
    for technique, label in ((Technique.BASELINE, "Two-level scheduler"),
                             (Technique.GATES_NO_PG, "GATES")):
        sm = build_sm(build_fig4_kernel(), TechniqueConfig(technique),
                      sm_config=FIG4_CONFIG)
        strips = occupancy_chart(sm)
        print(f"{label}:")
        print(f"  cycle      {''.join(str((i + 1) % 10) for i in range(len(strips['INT0'])))}")
        print(f"  INT pipe   {strips['INT0']}")
        print(f"  FP pipe    {strips['FP0']}\n")
    print("'#' = pipeline holds work, '.' = idle.  GATES coalesces each "
          "unit's idle cycles into one long window per type, which is "
          "what makes power gating worthwhile.")


if __name__ == "__main__":
    main()
