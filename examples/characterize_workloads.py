#!/usr/bin/env python3
"""Workload characterisation (reproduces the paper's Figure 5).

Prints (a) the instruction-type mix of every benchmark model and (b)
the measured active-warp population from baseline simulator runs, side
by side with the values read off the paper's figure.  The paper uses
this data to argue GATES has room to work: most benchmarks have both a
healthy INT/FP mix and enough active warps to reorder.

Usage::

    python examples/characterize_workloads.py [--scale 1.0]
"""

import argparse

from repro.analysis.report import format_table
from repro.harness import figures
from repro.harness.experiment import ExperimentRunner, ExperimentSettings
from repro.workloads.characterization import count_low_occupancy


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--scale", type=float, default=1.0)
    args = parser.parse_args()
    runner = ExperimentRunner(ExperimentSettings(scale=args.scale))

    print(format_table(figures.FIG5A_HEADERS, figures.fig5a_rows(runner),
                       title="Figure 5a: instruction mix"))
    print()
    rows = figures.fig5b_rows(runner)
    print(format_table(figures.FIG5B_HEADERS, rows,
                       title="Figure 5b: active warps (measured vs paper)"))
    low = count_low_occupancy(
        [{"avg_active_warps": r[1]} for r in rows])
    print(f"\nbenchmarks averaging fewer than 10 active warps: {low} "
          f"(paper: 5 of 18)")


if __name__ == "__main__":
    main()
