#!/usr/bin/env python3
"""Whole-device run: 15 SMs, block-level work distribution.

The paper's statistics are per-SM, but the GTX480 has 15 of them.  This
example distributes one benchmark's warps round-robin over a full device
(the way thread blocks spread over SMs), runs every SM under Warped
Gates and under the no-gating baseline, and aggregates device-level
savings and runtime — including the per-SM spread, which shows how work
imbalance affects gating opportunity at the edges of a kernel.

Usage::

    python examples/multi_sm_device.py [benchmark] [--sms 15] [--scale 1.0]
"""

import argparse

from repro.analysis.report import format_fraction, format_table
from repro.core.techniques import Technique, TechniqueConfig, build_sm
from repro.isa.optypes import ExecUnitKind
from repro.sim.gpu import GPU
from repro.workloads.registry import build_kernel
from repro.workloads.specs import BENCHMARK_NAMES, get_profile


def device(technique: Technique, n_sms: int, dram_latency: int) -> GPU:
    def factory(kernel):
        return build_sm(kernel, TechniqueConfig(technique),
                        dram_latency=dram_latency)
    return GPU(n_sms=n_sms, sm_factory=factory)


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("benchmark", nargs="?", default="srad",
                        choices=BENCHMARK_NAMES)
    parser.add_argument("--sms", type=int, default=15,
                        help="number of SMs (GTX480 has 15)")
    parser.add_argument("--scale", type=float, default=1.0)
    args = parser.parse_args()

    kernel = build_kernel(args.benchmark, scale=args.scale)
    profile = get_profile(args.benchmark)
    base = device(Technique.BASELINE, args.sms,
                  profile.dram_latency).run(kernel)
    wg = device(Technique.WARPED_GATES, args.sms,
                profile.dram_latency).run(kernel)

    bet = 14
    activity = wg.unit_activity(ExecUnitKind.INT)
    savings = (activity.gated_cycles - activity.gating_events * bet) \
        / activity.cycles if activity.cycles else 0.0

    print(f"benchmark: {args.benchmark}  warps: {kernel.n_warps}  "
          f"SMs used: {len(wg.sm_results)}\n")
    rows = [
        ("device cycles (baseline)", base.cycles),
        ("device cycles (warped gates)", wg.cycles),
        ("normalised performance", round(base.cycles / wg.cycles, 3)),
        ("device INT static savings", format_fraction(savings)),
        ("instructions retired", wg.total_instructions),
    ]
    print(format_table(("metric", "value"), rows, title="Device summary"))

    print()
    per_sm = [[r.kernel_name, r.cycles,
               r.stats.instructions_retired,
               round(r.stats.avg_active_warps, 1)]
              for r in wg.sm_results]
    print(format_table(("sm", "cycles", "instructions", "avg_active"),
                       per_sm, title="Per-SM breakdown (warped gates)"))


if __name__ == "__main__":
    main()
