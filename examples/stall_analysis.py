#!/usr/bin/env python3
"""Issue-stall breakdown: where do issue opportunities go?

Runs one benchmark under several techniques and prints the stall-event
profile (per 1000 cycles): nothing-ready, structural port conflicts,
blackout denials, wakeups in progress, MSHR back-pressure.  The
interesting contrast: conventional gating shows `unit_waking` events
(instructions waiting out the 3-cycle wakeup), Blackout converts them
into `unit_gated` denials (instructions parked until break-even), and
Warped Gates' adaptive window shrinks both.

Usage::

    python examples/stall_analysis.py [benchmark] [--scale 1.0]
"""

import argparse

from repro.analysis.report import format_table
from repro.analysis.stalls import STALL_HEADERS, stall_rows
from repro.core.techniques import Technique, TechniqueConfig, run_benchmark
from repro.workloads.specs import BENCHMARK_NAMES

TECHNIQUES = (Technique.BASELINE, Technique.CONV_PG,
              Technique.NAIVE_BLACKOUT, Technique.WARPED_GATES)


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("benchmark", nargs="?", default="cutcp",
                        choices=BENCHMARK_NAMES)
    parser.add_argument("--scale", type=float, default=1.0)
    args = parser.parse_args()

    runs = {technique.value: run_benchmark(
                args.benchmark, TechniqueConfig(technique),
                scale=args.scale)
            for technique in TECHNIQUES}
    print(format_table(
        STALL_HEADERS, stall_rows(runs),
        title=f"Stall events per kilocycle: {args.benchmark}"))
    print("\nReading guide: baseline has no gating stalls; conv_pg "
          "adds unit_waking; blackout variants add unit_gated "
          "denials; warped_gates' wider idle-detect reduces both.")


if __name__ == "__main__":
    main()
