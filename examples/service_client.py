#!/usr/bin/env python3
"""Simulation service end to end: serve, submit, dedupe, stream, verify.

Starts the JSON-over-HTTP service in-process (the same server
``python -m repro serve`` runs), then drives the stdlib client through
the whole API surface:

1. submit one job and watch its event feed stream back as JSONL;
2. submit the *same* request again and observe single-flight dedupe
   (same job id, no second simulation);
3. fetch the settled result and check its canonical digest against a
   local in-process run of the same spec — the serve path changes
   nothing about the numbers.

Usage::

    python examples/service_client.py [benchmark] [--scale 0.25]
"""

import argparse
import asyncio
import json
import threading

from repro.core.digest import result_digest
from repro.engine import ParallelEngine
from repro.harness.experiment import ExperimentRunner, ExperimentSettings
from repro.service.api import ServiceAPI
from repro.service.client import ServiceClient
from repro.service.core import SimulationService
from repro.workloads.specs import BENCHMARK_NAMES


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("benchmark", nargs="?", default="bfs",
                        choices=BENCHMARK_NAMES)
    parser.add_argument("--scale", type=float, default=0.25,
                        help="workload scale factor (default 0.25)")
    args = parser.parse_args()

    # -- a live server on a background event loop ----------------------
    engine = ParallelEngine(jobs=1, cache_dir=None)
    service = SimulationService(engine=engine)
    api = ServiceAPI(service, port=0)  # port 0: pick a free one
    loop = asyncio.new_event_loop()
    thread = threading.Thread(target=loop.run_forever, daemon=True)
    thread.start()
    port = asyncio.run_coroutine_threadsafe(api.start(), loop).result(10)
    print(f"service up on 127.0.0.1:{port}\n")

    try:
        client = ServiceClient("127.0.0.1", port)

        # 1. submit, then stream the job's event feed (replay + live)
        request = {"benchmark": args.benchmark,
                   "technique": "warped_gates", "scale": args.scale}
        accepted = client.submit(request)
        job_id = accepted["job_id"]
        print(f"submitted {accepted['label']} as job {job_id}")
        print("event feed:")
        for record in client.stream(job_id):
            print("  " + json.dumps(record, default=str))

        # 2. the same request dedupes onto the same job — no rerun
        again = client.submit(request)
        print(f"\nresubmitted: job {again['job_id']} "
              f"deduped={again['deduped']} "
              f"submissions={again['submissions']}")

        # 3. settled result + digest parity with a local run
        result = client.wait(job_id, timeout=600)
        print(f"\nresult: state={result['state']} "
              f"cycles={result['cycles']}")
        print(f"served digest: {result['digest']}")
        local = ExperimentRunner(ExperimentSettings(
            scale=args.scale,
            benchmarks=(args.benchmark,))).run(args.benchmark,
                                               "warped_gates")
        match = result["digest"] == result_digest(local)
        print(f"local  digest: {result_digest(local)}")
        print(f"digest parity with in-process run: "
              f"{'OK' if match else 'MISMATCH'}")
        if not match:
            raise SystemExit(1)
    finally:
        asyncio.run_coroutine_threadsafe(api.stop(), loop).result(60)
        loop.call_soon_threadsafe(loop.stop)
        thread.join(10)
        loop.close()
        service.close()


if __name__ == "__main__":
    main()
