#!/usr/bin/env python3
"""Tutorial: evaluating Warped Gates on your own workload model.

The 18 built-in benchmarks are statistical models; nothing stops you
from describing your own kernel.  This example builds a deliberately
extreme workload — long INT phases alternating with long FP phases at
the *trace* level — and shows how each technique exploits it, plus a
fully hand-written two-warp kernel at the instruction level.

Usage::

    python examples/custom_workload.py
"""

from repro.analysis.report import format_fraction, format_table
from repro.core.techniques import Technique, TechniqueConfig, build_sm
from repro.isa.instructions import fp_op, int_op, load_op, store_op
from repro.isa.optypes import ExecUnitKind, OpClass
from repro.isa.trace import KernelTrace, WarpTrace
from repro.isa.tracegen import TraceSpec, generate_kernel

BET = 14


def statistical_workload() -> KernelTrace:
    """A custom spec: FP-light workload with heavy divergence."""
    spec = TraceSpec(
        name="custom-fp-light",
        mix={OpClass.INT: 0.62, OpClass.FP: 0.08,
             OpClass.SFU: 0.02, OpClass.LDST: 0.28},
        n_warps=64, instructions_per_warp=80, max_resident_warps=32,
        dep_prob=0.4, dep_distance_mean=4.0,
        load_fraction=0.75, footprint_lines=2048, locality=0.7,
        shared_fraction=0.2, branch_prob=0.1)
    return generate_kernel(spec, seed=42)


def handwritten_kernel() -> KernelTrace:
    """Two warps written instruction by instruction."""
    producer = WarpTrace(0, (
        load_op(dest=0, line_addr=16),
        int_op(dest=1, srcs=(0,)),
        int_op(dest=2, srcs=(1,)),
        fp_op(dest=3, srcs=(2,)),
        store_op(line_addr=17, srcs=(3,)),
    ))
    consumer = WarpTrace(1, (
        load_op(dest=0, line_addr=16),
        fp_op(dest=1, srcs=(0,)),
        fp_op(dest=2, srcs=(1,)),
        int_op(dest=3, srcs=(2,)),
    ))
    return KernelTrace(name="handwritten", warps=(producer, consumer),
                       max_resident_warps=2)


def savings(result, kind) -> float:
    activity = result.unit_activity(kind)
    if activity.cycles == 0:
        return 0.0
    return (activity.gated_cycles
            - activity.gating_events * BET) / activity.cycles


def main() -> None:
    print(__doc__)
    kernel = statistical_workload()
    rows = []
    baseline_cycles = None
    for technique in (Technique.BASELINE, Technique.CONV_PG,
                      Technique.WARPED_GATES):
        sm = build_sm(kernel, TechniqueConfig(technique), dram_latency=380)
        result = sm.run()
        if technique is Technique.BASELINE:
            baseline_cycles = result.cycles
        rows.append([technique.value, result.cycles,
                     format_fraction(savings(result, ExecUnitKind.INT)),
                     format_fraction(savings(result, ExecUnitKind.FP)),
                     f"{baseline_cycles / result.cycles:.3f}"])
    print(format_table(
        ("technique", "cycles", "int saved", "fp saved", "perf"),
        rows, title="Custom FP-light workload"))
    print("\nAn FP-light mix leaves the FP clusters asleep almost the "
          "whole run -- gating pays maximally there.\n")

    result = build_sm(handwritten_kernel(),
                      TechniqueConfig(Technique.WARPED_GATES),
                      dram_latency=200).run()
    print(f"handwritten kernel: {result.cycles} cycles, "
          f"{result.stats.instructions_retired} instructions retired, "
          f"L1 merges={result.memory.merged_misses} "
          f"(both warps share line 16)")


if __name__ == "__main__":
    main()
