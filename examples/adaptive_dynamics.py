#!/usr/bin/env python3
"""Adaptive idle-detect dynamics (paper section 5.1).

Runs one benchmark under the full Warped Gates configuration and dumps
the epoch-by-epoch trajectory of the adaptive controller for each unit
type: critical wakeups observed in the epoch and the resulting
idle-detect window.  Benchmarks that pressure their units (many
critical wakeups) drive the window up toward the 10-cycle bound;
quiet phases decay it back toward 5.

Usage::

    python examples/adaptive_dynamics.py [benchmark] [--scale 1.0]
"""

import argparse

from repro.analysis.report import format_table
from repro.core.adaptive import AdaptiveIdleDetect
from repro.core.techniques import Technique, TechniqueConfig, build_sm
from repro.workloads.registry import build_kernel
from repro.workloads.specs import BENCHMARK_NAMES, get_profile


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("benchmark", nargs="?", default="cutcp",
                        choices=BENCHMARK_NAMES)
    parser.add_argument("--scale", type=float, default=1.0)
    args = parser.parse_args()

    kernel = build_kernel(args.benchmark, scale=args.scale)
    profile = get_profile(args.benchmark)
    sm = build_sm(kernel, TechniqueConfig(Technique.WARPED_GATES),
                  dram_latency=profile.dram_latency)
    result = sm.run()

    controllers = [h for h in sm.hooks if isinstance(h, AdaptiveIdleDetect)]
    labels = ["INT", "FP"][:len(controllers)]
    print(f"benchmark: {args.benchmark}  cycles: {result.cycles}\n")
    for label, controller in zip(labels, controllers):
        rows = [[epoch, critical, idle_detect]
                for epoch, critical, idle_detect in controller.history]
        if not rows:
            print(f"{label}: run shorter than one epoch "
                  f"({controller.config.epoch_cycles} cycles); no "
                  f"adaptation happened.\n")
            continue
        print(format_table(
            ("epoch", "critical_wakeups", "idle_detect_after"),
            rows, title=f"{label} adaptive idle-detect trajectory"))
        print()
    print("final idle-detect per domain:", result.idle_detect_final)


if __name__ == "__main__":
    main()
