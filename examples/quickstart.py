#!/usr/bin/env python3
"""Quickstart: compare Warped Gates against its baselines on one benchmark.

Runs the paper's representative benchmark (hotspot) under the no-gating
baseline, conventional power gating, and the full Warped Gates system,
then prints the headline metrics: INT/FP static energy savings, the
idle-period region split (Figure 3's view), and normalised performance.

Usage::

    python examples/quickstart.py [benchmark] [--scale 1.0]
"""

import argparse

from repro import Technique
from repro.analysis.idle_periods import region_fractions
from repro.analysis.report import format_fraction, format_table
from repro.harness.experiment import (
    ExperimentRunner,
    ExperimentSettings,
    normalized_performance,
)
from repro.isa.optypes import ExecUnitKind
from repro.workloads.specs import BENCHMARK_NAMES


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("benchmark", nargs="?", default="hotspot",
                        choices=BENCHMARK_NAMES)
    parser.add_argument("--scale", type=float, default=1.0,
                        help="workload scale factor (default 1.0)")
    args = parser.parse_args()

    settings = ExperimentSettings(scale=args.scale,
                                  benchmarks=(args.benchmark,))
    runner = ExperimentRunner(settings)
    techniques = (Technique.CONV_PG, Technique.WARPED_GATES)

    base = runner.baseline(args.benchmark)
    print(f"benchmark: {args.benchmark}  "
          f"(cycles={base.cycles}, IPC={base.stats.ipc:.2f}, "
          f"avg active warps={base.stats.avg_active_warps:.1f})\n")

    rows = []
    for technique in techniques:
        result = runner.run(args.benchmark, technique)
        int_sav = runner.static_savings(args.benchmark, technique,
                                        ExecUnitKind.INT)
        fp_sav = runner.static_savings(args.benchmark, technique,
                                       ExecUnitKind.FP)
        regions = region_fractions(
            result.idle_histogram(ExecUnitKind.INT),
            idle_detect=settings.gating.idle_detect,
            bet=settings.gating.bet)
        rows.append([
            technique.value,
            format_fraction(int_sav),
            format_fraction(fp_sav),
            f"{normalized_performance(base, result):.3f}",
            f"{regions.wasted:.0%}/{regions.loss:.0%}/{regions.gain:.0%}",
        ])
    print(format_table(
        ("technique", "int static saved", "fp static saved",
         "norm. perf", "idle regions (waste/loss/gain)"),
        rows, title="Warped Gates quickstart"))
    print("\nExpected shape: Warped Gates saves more static energy than "
          "conventional gating, empties the loss region, and keeps "
          "performance within ~1-2% of baseline.")


if __name__ == "__main__":
    main()
