"""Build shim: optional mypyc compilation of the dense-kernel modules.

All real metadata lives in pyproject.toml.  This file does two jobs:

* enables ``pip install -e . --no-use-pep517`` on offline machines
  (the legacy role), and
* when **both** opt-ins are present — ``REPRO_MYPYC=1`` in the build
  environment *and* mypyc importable (``pip install -e .[compiled]``
  brings it in) — compiles the dense-step kernel's hot pure-Python
  modules ahead of time with mypyc.

The compiled build is an accelerator, never a requirement: any
failure (mypyc missing, compilation error, unsupported platform)
falls back to the pure-Python build, and the golden identity suite
pins both flavours bit-identical.  Use ``--no-build-isolation`` when
building with ``REPRO_MYPYC=1`` so the already-installed mypy is
visible to this script.
"""

import os

from setuptools import setup

#: Modules worth compiling: the per-cycle dense engine and the
#: scoreboard it calls into on every refresh.  Deliberately small —
#: most of the simulator is glue where compilation buys nothing.
MYPYC_MODULES = [
    "src/repro/sim/kernel.py",
    "src/repro/sim/scoreboard.py",
]


def _ext_modules():
    if os.environ.get("REPRO_MYPYC") != "1":
        return []
    try:
        from mypyc.build import mypycify
    except ImportError:
        print("REPRO_MYPYC=1 but mypyc is not importable; "
              "building pure Python (install the [compiled] extra "
              "and use --no-build-isolation)")
        return []
    try:
        return mypycify(MYPYC_MODULES)
    except Exception as exc:  # pragma: no cover - toolchain-dependent
        print(f"mypyc compilation failed ({exc!r}); "
              "building pure Python")
        return []


setup(ext_modules=_ext_modules())
